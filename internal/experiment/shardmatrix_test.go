package experiment

import (
	"testing"
)

// TestShardWorkerMatrixIdentical is the PR's tier-1 table property: under
// the serial-equivalence sharded engine, experiment tables are
// byte-identical across the full workers {1,8} x shards {1,2,4} matrix
// for the load (fig9), fault (faultsweep) and churn (churnsweep)
// pipelines. Workers vary only the cell scheduling; shards vary only the
// engine's internal structure; neither may leak into a result. The
// (workers=1, shards=1) cell is the pre-refactor baseline every other
// cell is diffed against.
func TestShardWorkerMatrixIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full worker x shard matrix in -short mode")
	}
	cases := []struct {
		id  string
		run Runner
	}{
		{"fig9", Fig9LoadVsR},
		{"faultsweep", FaultSweep},
		{"churnsweep", ChurnSweep},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			base := testConfig()
			base.Workers = 1
			base.Shards = 1
			bt, err := c.run(base)
			if err != nil {
				t.Fatal(err)
			}
			want := renderTables(t, bt)

			for _, workers := range []int{1, 8} {
				for _, shards := range []int{1, 2, 4} {
					if workers == 1 && shards == 1 {
						continue
					}
					cfg := testConfig()
					cfg.Workers = workers
					cfg.Shards = shards
					gt, err := c.run(cfg)
					if err != nil {
						t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
					}
					if got := renderTables(t, gt); got != want {
						t.Fatalf("workers=%d shards=%d diverged from workers=1 shards=1:\n--- got ---\n%s\n--- want ---\n%s",
							workers, shards, got, want)
					}
				}
			}
		})
	}
}
