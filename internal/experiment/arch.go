package experiment

import (
	"fmt"
	"math"

	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// ArchComparison quantifies the paper's §3.3 qualitative trade-off table
// from our own implementations: wire header cost, per-switch state, worm
// and phase counts for a multicast of the configured degree on the default
// system, averaged over the topology family.
func ArchComparison(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	N := cfg.TopoCfg.Nodes
	P := cfg.TopoCfg.PortsPerSwitch

	// Mean path-worm count and phases for degree-d random sets. (Mix, not
	// multiply: cfg.Seed*31 collapses every run with Seed 0 onto one
	// stream and aliases across multipliers.)
	r := rng.New(rng.Mix(cfg.Seed, saltArch))
	var wormSum, phaseSum, segSum float64
	samples := 0
	for _, rt := range rts {
		for i := 0; i < cfg.Probes; i++ {
			picks := r.Sample(N, cfg.Degree+1)
			src := topology.NodeID(picks[0])
			dests := make([]topology.NodeID, cfg.Degree)
			for j, v := range picks[1:] {
				dests[j] = topology.NodeID(v)
			}
			res, err := pathworm.New().Cover(rt, src, dests)
			if err != nil {
				return nil, err
			}
			wormSum += float64(res.Worms)
			for _, specs := range res.Sends {
				for _, w := range specs {
					segSum += float64(len(w.Path))
				}
			}
			phaseSum += float64(res.Phases)
			samples++
		}
	}
	meanWorms := wormSum / float64(samples)
	meanSegs := segSum / wormSum
	meanPhases := phaseSum / float64(samples)

	// Mean per-switch reachability state for the tree scheme: one N-bit
	// string per down port.
	var downPorts float64
	var switches float64
	for _, rt := range rts {
		for s := 0; s < rt.Topo.NumSwitches; s++ {
			downPorts += float64(len(rt.DownPorts(topology.SwitchID(s))))
			switches++
		}
	}
	stateBits := downPorts / switches * float64(N)

	tab := &metrics.Table{
		Title:  fmt.Sprintf("Arch comparison (§3.3): %d nodes, %d-port switches, %d-way multicast", N, P, cfg.Degree),
		XLabel: "metric",
		YLabel: "per scheme",
	}
	x := []float64{1, 2, 3, 4, 5}
	// Metrics axis: 1=header flits, 2=switch state bits, 3=worms per
	// multicast, 4=communication phases, 5=needs switch replication (0/1).
	tab.Series = []metrics.Series{
		{
			Label: "ni-kbinomial",
			X:     x,
			Y: []float64{
				float64(sim.UnicastHeaderFlits),
				0,
				float64(cfg.Degree), // one unicast worm per destination
				0,                   // NI-level forwarding steps, no host phases beyond the first
				0,
			},
		},
		{
			Label: "sw-tree",
			X:     x,
			Y: []float64{
				float64(sim.TreeHeaderFlits(N)),
				stateBits,
				1,
				1,
				1,
			},
		},
		{
			Label: "sw-path",
			X:     x,
			Y: []float64{
				float64(sim.PathHeaderFlits(int(meanSegs+0.5), P)),
				0,
				meanWorms,
				meanPhases,
				1,
			},
		},
	}
	return []*metrics.Table{tab}, nil
}

// UnicastSaturation reproduces the §4.3 sanity bound: "the maximum unicast
// throughput (assuming no software overheads and no contention for the I/O
// bus) was observed to be less than 0.8 using up*/down* routing". Matching
// the paper's framing, software overheads are zeroed and the I/O bus made
// effectively infinite, so the sweep measures pure network capacity under
// uniform random traffic.
func UnicastSaturation(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	p := cfg.Params
	p.OHostSend, p.OHostRecv, p.ONISend, p.ONIRecv = 0, 0, 0, 0
	p.BusMBps = 1 << 20 // effectively no I/O bus contention
	cfg.Params = p
	tab := &metrics.Table{
		Title:  "Unicast saturation check (up*/down*, uniform traffic)",
		XLabel: "offered load (flits/cycle/node)",
		YLabel: "accepted load / mean latency",
	}
	accepted := metrics.Series{Label: "accepted load"}
	latency := metrics.Series{Label: "mean latency (cycles)"}
	sch := unicastScheme{}
	for _, l := range cfg.Loads {
		l := l
		res, err := runCells(cfg, len(rts), func(i int, _ cellCtx) (traffic.LoadResult, error) {
			rec, commit := cfg.cellObs(fmt.Sprintf("unisat/l=%v/topo%03d", l, i))
			r, err := traffic.Run(rts[i], traffic.Workload{
				Scheme: sch, Params: cfg.Params, Degree: 1, MsgFlits: cfg.MsgFlits,
				Seed: rng.Mix(cfg.Seed, saltLoad, uint64(i)),
			}, traffic.WithLoad(traffic.LoadSpec{
				EffectiveLoad: l, Warmup: cfg.Warmup, Measure: cfg.Measure,
				Drain: cfg.Drain,
			}), traffic.WithObs(rec), traffic.WithShards(cfg.Shards))
			if err != nil {
				return traffic.LoadResult{}, err
			}
			commit()
			return *r.Load, nil
		})
		if err != nil {
			return nil, err
		}
		var acc, lat []float64
		sat := false
		for _, r := range res {
			acc = append(acc, r.AcceptedLoad)
			if r.Latency.Count > 0 {
				lat = append(lat, r.Latency.Mean)
			}
			if r.Saturated {
				sat = true
			}
		}
		note := ""
		if sat {
			note = "SAT"
		}
		accepted.X = append(accepted.X, l)
		accepted.Y = append(accepted.Y, metrics.Mean(acc))
		accepted.Note = append(accepted.Note, note)
		latency.X = append(latency.X, l)
		// A fully saturated point can complete zero messages; NaN keeps the
		// "SAT" note without plotting a bogus zero latency.
		if len(lat) > 0 {
			latency.Y = append(latency.Y, metrics.Mean(lat))
		} else {
			latency.Y = append(latency.Y, math.NaN())
		}
		latency.Note = append(latency.Note, note)
		if sat {
			break
		}
	}
	tab.Series = []metrics.Series{accepted, latency}
	return []*metrics.Table{tab}, nil
}

// unicastScheme adapts plain unicast sends to the mcast.Scheme interface
// for the saturation check (degree-1 "multicasts").
type unicastScheme struct{}

func (unicastScheme) Name() string { return "unicast" }

func (unicastScheme) Plan(rt *updown.Routing, _ sim.Params, src topology.NodeID, dests []topology.NodeID, _ int) (*sim.Plan, error) {
	specs := make([]sim.WormSpec, len(dests))
	for i, d := range dests {
		specs[i] = sim.WormSpec{Kind: sim.WormUnicast, Dest: d}
	}
	return &sim.Plan{
		Source:    src,
		Dests:     dests,
		HostSends: map[topology.NodeID][]sim.WormSpec{src: specs},
	}, nil
}
