package experiment

import (
	"fmt"

	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// RootSelection measures a known up*/down* lever the paper holds fixed:
// where the spanning-tree root sits. Autonet's UID-based agreement (our
// deterministic switch 0) can land the root at the graph's edge, deepening
// the tree and lengthening tree-worm climbs; rooting at a graph center
// shortens them. The experiment compares tree-worm latency under both
// roots, isolated and under load.
func RootSelection(cfg Config) ([]*metrics.Table, error) {
	variants := []struct {
		label  string
		center bool
	}{
		{"default root (lowest ID)", false},
		{"center root", true},
	}
	build := func(center bool, count int, seedOff uint64) ([]*updown.Routing, error) {
		topos, err := topology.GenerateFamily(cfg.TopoCfg, count, cfg.Seed+seedOff)
		if err != nil {
			return nil, err
		}
		rts := make([]*updown.Routing, len(topos))
		for i, t := range topos {
			rt, err := updown.NewWithOptions(t, updown.Options{Root: -1, CenterRoot: center})
			if err != nil {
				return nil, err
			}
			rts[i] = rt
		}
		return rts, nil
	}

	iso := &metrics.Table{
		Title:  "Root selection: isolated tree-worm multicast",
		XLabel: "multicast degree",
		YLabel: "mean single multicast latency (cycles)",
	}
	for _, v := range variants {
		rts, err := build(v.center, cfg.Topologies, 0)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Label: v.label}
		for _, degree := range []float64{8, 16, 31} {
			mean, err := singleMean(rts, treeworm.New(), cfg.Params, int(degree), cfg.MsgFlits, cfg.Probes, cfg.Seed)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, degree)
			s.Y = append(s.Y, mean)
		}
		iso.Series = append(iso.Series, s)
	}

	load := &metrics.Table{
		Title:  fmt.Sprintf("Root selection: tree worms under %d-way load", cfg.LoadDegrees[0]),
		XLabel: "effective applied load",
		YLabel: "mean multicast latency (cycles)",
	}
	for _, v := range variants {
		rts, err := build(v.center, cfg.LoadTopologies, 0)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Label: v.label}
		for _, l := range cfg.Loads {
			var means []float64
			sat := false
			for i, rt := range rts {
				res, err := traffic.RunLoad(rt, traffic.LoadConfig{
					Scheme: treeworm.New(), Params: cfg.Params,
					Degree: cfg.LoadDegrees[0], MsgFlits: cfg.MsgFlits,
					EffectiveLoad: l, Warmup: cfg.Warmup, Measure: cfg.Measure,
					Drain: cfg.Drain, Seed: cfg.Seed + uint64(i)*37,
				})
				if err != nil {
					return nil, err
				}
				if res.Saturated {
					sat = true
				}
				if res.Latency.Count > 0 {
					means = append(means, res.Latency.Mean)
				}
			}
			note := ""
			if sat {
				note = "SAT"
			}
			s.X = append(s.X, l)
			s.Y = append(s.Y, metrics.Mean(means))
			s.Note = append(s.Note, note)
			if sat {
				break
			}
		}
		load.Series = append(load.Series, s)
	}
	return []*metrics.Table{iso, load}, nil
}
