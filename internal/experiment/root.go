package experiment

import (
	"fmt"

	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// RootSelection measures a known up*/down* lever the paper holds fixed:
// where the spanning-tree root sits. Autonet's UID-based agreement (our
// deterministic switch 0) can land the root at the graph's edge, deepening
// the tree and lengthening tree-worm climbs; rooting at a graph center
// shortens them. The experiment compares tree-worm latency under both
// roots, isolated and under load.
func RootSelection(cfg Config) ([]*metrics.Table, error) {
	variants := []struct {
		label  string
		center bool
	}{
		{"default root (lowest ID)", false},
		{"center root", true},
	}
	build := func(center bool, count int) ([]*updown.Routing, error) {
		topos, err := topology.GenerateFamily(cfg.TopoCfg, count, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rts := make([]*updown.Routing, len(topos))
		for i, t := range topos {
			rt, err := updown.NewWithOptions(t, updown.Options{Root: -1, CenterRoot: center})
			if err != nil {
				return nil, err
			}
			rts[i] = rt
		}
		return rts, nil
	}

	iso := &metrics.Table{
		Title:  "Root selection: isolated tree-worm multicast",
		XLabel: "multicast degree",
		YLabel: "mean single multicast latency (cycles)",
	}
	for _, v := range variants {
		rts, err := build(v.center, cfg.Topologies)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Label: v.label}
		for _, degree := range []float64{8, 16, 31} {
			mean, err := singleMean(cfg, fmt.Sprintf("root/%s/d=%d", v.label, int(degree)), rts, treeworm.New(), cfg.Params, int(degree), cfg.MsgFlits)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, degree)
			s.Y = append(s.Y, mean)
		}
		iso.Series = append(iso.Series, s)
	}

	load := &metrics.Table{
		Title:  fmt.Sprintf("Root selection: tree worms under %d-way load", cfg.LoadDegrees[0]),
		XLabel: "effective applied load",
		YLabel: "mean multicast latency (cycles)",
	}
	specs := make([]loadCurveSpec, len(variants))
	for i, v := range variants {
		rts, err := build(v.center, cfg.LoadTopologies)
		if err != nil {
			return nil, err
		}
		specs[i] = loadCurveSpec{
			Label: v.label, ErrCtx: " (root selection)",
			Scheme: treeworm.New(), Rts: rts, Params: cfg.Params,
			Degree: cfg.LoadDegrees[0], Flits: cfg.MsgFlits,
		}
	}
	series, err := runLoadCurves(cfg, specs)
	if err != nil {
		return nil, err
	}
	load.Series = append(load.Series, series...)
	return []*metrics.Table{iso, load}, nil
}
