package experiment

import (
	"fmt"
	"math"

	"mcastsim/internal/event"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// FaultSweep measures dynamic fault tolerance: links fail mid-flight
// (not between runs, as in the static "fault" experiment) and the
// NI-level retransmission protocol re-plans the undelivered remainder
// against the reconfigured up*/down* tables. The sweep varies the number
// of simultaneous link failures per probe and compares schemes on three
// axes: delivery ratio (should stay 100% while the network remains
// connected — only non-partitioning link sets are injected), recovery
// latency (timeouts + backoff + retransmission), and post-fault
// steady-state latency (a clean multicast on the reconfigured network).
// The detection delay before tables rebuild is Params.FaultDetectCycles.
func FaultSweep(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	failures := []int{0, 1, 2}

	delivery := &metrics.Table{
		Title:  "Fault sweep: delivery ratio under mid-flight link failures",
		XLabel: "simultaneous link failures",
		YLabel: "destinations delivered (%)",
	}
	recovery := &metrics.Table{
		Title:  "Fault sweep: recovery latency (timeout + re-plan + retransmit)",
		XLabel: "simultaneous link failures",
		YLabel: "mean reliable-delivery latency (cycles)",
	}
	steady := &metrics.Table{
		Title:  "Fault sweep: post-fault steady-state multicast latency",
		XLabel: "simultaneous link failures",
		YLabel: "mean clean multicast latency after reconfiguration (cycles)",
	}

	// One cell per (scheme, failure count, topology): a full RunFault
	// probe batch on its own network, seeded by the same rng.Mix grid the
	// serial sweep used.
	schemes := compared()
	type key struct{ si, fi, ti int }
	var keys []key
	for si := range schemes {
		for fi := range failures {
			for ti := range rts {
				keys = append(keys, key{si, fi, ti})
			}
		}
	}
	cells, err := runCells(cfg, len(keys), func(i int, _ cellCtx) ([]traffic.FaultProbe, error) {
		k := keys[i]
		f := failures[k.fi]
		rec, commit := cfg.cellObs(fmt.Sprintf("faultsweep/%s/f=%d/topo%03d",
			schemes[k.si].Name(), f, k.ti))
		r, err := traffic.Run(rts[k.ti], traffic.Workload{
			Scheme: schemes[k.si], Params: cfg.Params, Degree: cfg.Degree,
			MsgFlits: cfg.MsgFlits,
			Seed:     rng.Mix(cfg.Seed, 0xfa11, uint64(k.ti), uint64(f)),
		}, traffic.WithFaults(traffic.FaultSpec{
			Probes: cfg.Probes,
			Faults: func(probe int, rt *updown.Routing) *sim.FaultSchedule {
				return nonPartitioningLinkFaults(rt, f,
					rng.Mix(cfg.Seed, 0x5eed, uint64(k.ti), uint64(probe), uint64(f)))
			},
		}), traffic.WithObs(rec), traffic.WithShards(cfg.Shards))
		if err != nil {
			return nil, fmt.Errorf("experiment: faultsweep %s f=%d: %w", schemes[k.si].Name(), f, err)
		}
		commit()
		return r.Faults, nil
	})
	if err != nil {
		return nil, err
	}

	for si, sch := range schemes {
		dSer := metrics.Series{Label: sch.Name()}
		rSer := metrics.Series{Label: sch.Name()}
		sSer := metrics.Series{Label: sch.Name()}
		for fi, f := range failures {
			var delivered, total, attempts, probes int
			var recSum float64
			var postSum float64
			var postCount int
			for ti := range rts {
				for _, pr := range cells[(si*len(failures)+fi)*len(rts)+ti] {
					delivered += pr.Delivered
					total += pr.Total
					attempts += pr.Attempts
					probes++
					recSum += pr.Recovery
					if !math.IsNaN(pr.Post) {
						postSum += pr.Post
						postCount++
					}
				}
			}
			dSer.X = append(dSer.X, float64(f))
			dSer.Y = append(dSer.Y, 100*float64(delivered)/float64(total))
			dSer.Note = append(dSer.Note, fmt.Sprintf("%.2f attempts/probe", float64(attempts)/float64(probes)))
			rSer.X = append(rSer.X, float64(f))
			rSer.Y = append(rSer.Y, recSum/float64(probes))
			sSer.X = append(sSer.X, float64(f))
			if postCount > 0 {
				sSer.Y = append(sSer.Y, postSum/float64(postCount))
			} else {
				sSer.Y = append(sSer.Y, math.NaN())
			}
		}
		delivery.Series = append(delivery.Series, dSer)
		recovery.Series = append(recovery.Series, rSer)
		steady.Series = append(steady.Series, sSer)
	}
	return []*metrics.Table{delivery, recovery, steady}, nil
}

// nonPartitioningLinkFaults builds a schedule failing `count` links whose
// joint removal keeps the switch graph connected (so full delivery stays
// achievable and the sweep isolates recovery behavior from partition
// loss). Fault times land mid-flight for an isolated multicast started at
// cycle 0. Returns nil when count is 0 or no removable link exists.
func nonPartitioningLinkFaults(rt *updown.Routing, count int, seed uint64) *sim.FaultSchedule {
	if count <= 0 {
		return nil
	}
	t := rt.Topo
	r := rng.New(seed)
	dead := make([]bool, len(t.Links))
	at := event.Time(200 + r.Intn(400))
	fs := &sim.FaultSchedule{}
	for _, li := range r.Perm(len(t.Links)) {
		dead[li] = true
		if !t.ConnectedExcluding(dead, nil) {
			dead[li] = false
			continue
		}
		fs.Events = append(fs.Events, sim.FaultEvent{At: at, Kind: sim.FaultLink, Link: li})
		at += event.Time(100 + r.Intn(200))
		if len(fs.Events) == count {
			break
		}
	}
	if len(fs.Events) == 0 {
		return nil
	}
	return fs
}
