// Package pathworm implements the switch-based multi-phase multicast with
// multi-drop path-based multidestination worms, reconstructing the paper's
// MDP-LG algorithm (§3.2.4, after Kesavan & Panda, PCRCW'97).
//
// A path worm "uses almost exactly the same path followed by a unicast
// worm from a source to one of its destinations": it travels a legal
// (shortest) up*/down* route toward a primary destination switch and, at
// every switch along that route, drops copies to the destinations attached
// there, continuing through at most one further switch port. One path
// rarely passes every destination switch, so multiple worms are sent in
// multiple phases: destinations covered in earlier phases act as secondary
// sources for later worms — every phase paying full host software
// overhead, the cost the paper's comparison isolates.
//
// Reconstruction (the original heuristic's details are lost to the OCR;
// see DESIGN.md §6): planning is integrated with phase scheduling. In each
// phase, every node that already has the message sends one worm along a
// shortest legal path to an uncovered destination switch, dropping at
// every destination switch the path passes. The default, "less greedy"
// terminal choice targets the NEAREST uncovered destination switch (ties
// broken toward the path covering the most other uncovered switches):
// short worms hold few channels and block less of the network, at the
// price of more worms and phases — the trade the LG variant makes and the
// paper found best under contention. Greedy = true instead maximizes
// covered destination switches per worm (the MDP-G reconstruction, kept as
// an ablation). Paths are encoded stop-by-stop with explicit continuation
// ports, which keeps the worm's up*-then-down* legality independent of
// adaptive routing choices.
package pathworm

import (
	"fmt"
	"sort"

	"mcastsim/internal/mcast"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Scheme is the MDP-LG path-based multicast.
type Scheme struct {
	// SerialSchedule is an ablation: the source sends every worm itself
	// instead of recruiting covered destinations as secondary sources.
	// It isolates the value of MDP-LG's multi-phase dispatch.
	SerialSchedule bool
	// Greedy is an ablation: maximize covered destination switches per
	// worm (MDP-G) instead of the default shortest-worm-first (MDP-LG).
	Greedy bool
}

// New returns the scheme with the paper's multi-phase dispatch.
func New() Scheme { return Scheme{} }

// Name implements mcast.Scheme.
func (Scheme) Name() string { return "sw-path" }

// Result reports what a cover computation produced, for diagnostics and
// the architectural comparison.
type Result struct {
	Sends  map[topology.NodeID][]sim.WormSpec
	Worms  int
	Phases int
}

// Plan implements mcast.Scheme.
func (s Scheme) Plan(rt *updown.Routing, _ sim.Params, src topology.NodeID, dests []topology.NodeID, _ int) (*sim.Plan, error) {
	if err := mcast.CheckArgs(rt, src, dests); err != nil {
		return nil, err
	}
	res, err := s.Cover(rt, src, dests)
	if err != nil {
		return nil, err
	}
	return &sim.Plan{
		Source:    src,
		Dests:     dests,
		HostSends: res.Sends,
	}, nil
}

// Cover runs the integrated worm construction and phase schedule.
func (s Scheme) Cover(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID) (Result, error) {
	groups, switchList := mcast.DestSwitches(rt, dests)
	uncovered := make(map[topology.SwitchID]bool, len(switchList))
	for _, sw := range switchList {
		uncovered[sw] = true
	}
	res := Result{Sends: make(map[topology.NodeID][]sim.WormSpec)}
	informed := []topology.NodeID{src}
	for len(uncovered) > 0 {
		res.Phases++
		if res.Phases > len(switchList)+2 {
			return Result{}, fmt.Errorf("pathworm: cover failed to converge")
		}
		var newly []topology.NodeID
		// Contention reduction (the LG scheduling goal): worms dispatched
		// in the same phase must not share any network channel; a sender
		// whose best worm collides waits for a later phase.
		usedLinks := map[[2]int]bool{}
		sent := 0
		for _, sender := range informed {
			if len(uncovered) == 0 {
				break
			}
			worm := bestWorm(rt, rt.Topo.NodeSwitch[sender], uncovered, groups, s.Greedy)
			if sent > 0 && sharesLink(worm, usedLinks) {
				continue
			}
			markLinks(worm, usedLinks)
			sent++
			res.Sends[sender] = append(res.Sends[sender], worm)
			res.Worms++
			for _, seg := range worm.Path {
				if len(seg.Drops) > 0 {
					delete(uncovered, seg.Switch)
					newly = append(newly, seg.Drops...)
				}
			}
		}
		if !s.SerialSchedule {
			informed = append(informed, newly...)
		}
	}
	return res, nil
}

// sharesLink reports whether any of the worm's continuation channels is
// already claimed this phase.
func sharesLink(w sim.WormSpec, used map[[2]int]bool) bool {
	for _, seg := range w.Path {
		if seg.NextPort >= 0 && used[[2]int{int(seg.Switch), seg.NextPort}] {
			return true
		}
	}
	return false
}

func markLinks(w sim.WormSpec, used map[[2]int]bool) {
	for _, seg := range w.Path {
		if seg.NextPort >= 0 {
			used[[2]int{int(seg.Switch), seg.NextPort}] = true
		}
	}
}

// Worms returns how many worms the scheme dispatches for the multicast —
// the quantity the paper's Figure 7 discussion tracks as switches grow.
func (s Scheme) Worms(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID) int {
	res, err := s.Cover(rt, src, dests)
	if err != nil {
		return -1
	}
	return res.Worms
}

// state indexes the (switch, phase) legal-routing DAG.
type state struct {
	sw topology.SwitchID
	ph updown.Phase
}

// bestWorm selects the sender's next worm. Less-greedy (default): target
// the nearest uncovered destination switch, breaking distance ties toward
// the path covering the most other uncovered switches. Greedy: maximize
// covered switches outright, breaking ties toward the shorter path.
func bestWorm(rt *updown.Routing, s0 topology.SwitchID, uncovered map[topology.SwitchID]bool,
	groups map[topology.SwitchID][]topology.NodeID, greedy bool) sim.WormSpec {
	terminals := make([]topology.SwitchID, 0, len(uncovered))
	for sw := range uncovered {
		terminals = append(terminals, sw)
	}
	sort.Slice(terminals, func(i, j int) bool { return terminals[i] < terminals[j] })

	bestCover, bestLen := -1, int(^uint(0)>>2)
	var bestPath []pathStep
	for _, T := range terminals {
		dist := rt.DistUp(s0, T)
		if !greedy && dist > bestLen-1 && bestPath != nil {
			continue // a nearer terminal already chosen
		}
		cover, path := maxCoverPath(rt, s0, T, uncovered)
		length := len(path)
		better := false
		if greedy {
			better = cover > bestCover || (cover == bestCover && length < bestLen)
		} else {
			better = length < bestLen || (length == bestLen && cover > bestCover)
		}
		if better {
			bestCover, bestLen, bestPath = cover, length, path
		}
	}
	return makeSpec(bestPath, uncovered, groups)
}

// pathStep is one switch of a reconstructed path plus the output port
// toward the next switch (-1 at the terminal).
type pathStep struct {
	sw   topology.SwitchID
	port int
}

// maxCoverPath computes, over all shortest legal paths s0 -> T, the one
// visiting the most uncovered destination switches (DP over the shortest-
// path DAG; shortest paths cannot revisit a switch, so coverage is
// additive). It returns the coverage count and the step sequence,
// including both endpoints.
func maxCoverPath(rt *updown.Routing, s0, T topology.SwitchID, uncovered map[topology.SwitchID]bool) (int, []pathStep) {
	memo := map[state]int{}
	choice := map[state]pathStep{}
	var f func(st state) int
	f = func(st state) int {
		if v, ok := memo[st]; ok {
			return v
		}
		cover := 0
		if uncovered[st.sw] {
			cover = 1
		}
		if st.sw == T {
			memo[st] = cover
			choice[st] = pathStep{sw: st.sw, port: -1}
			return cover
		}
		ports, phases := rt.NextHops(st.sw, st.ph, T)
		best := -1
		var bestStep pathStep
		for i, p := range ports {
			next := state{rt.Topo.Conn[st.sw][p].Switch, phases[i]}
			if v := f(next); v > best || (v == best && p < bestStep.port) {
				best = v
				bestStep = pathStep{sw: st.sw, port: p}
			}
		}
		if best < 0 {
			// T unreachable from st — cannot happen for validated routing.
			panic(fmt.Sprintf("pathworm: no legal continuation from switch %d to %d", st.sw, T))
		}
		memo[st] = cover + best
		choice[st] = bestStep
		return cover + best
	}
	start := state{s0, updown.PhaseUp}
	total := f(start)
	// Reconstruct by replaying choices.
	var steps []pathStep
	cur := start
	for {
		step := choice[cur]
		steps = append(steps, step)
		if step.port == -1 {
			break
		}
		nextSw := rt.Topo.Conn[cur.sw][step.port].Switch
		nextPh := cur.ph
		if rt.Dirs[cur.sw][step.port] == updown.DirDown {
			nextPh = updown.PhaseDown
		}
		cur = state{nextSw, nextPh}
	}
	return total, steps
}

// makeSpec turns a path into the worm's stop chain: every switch on the
// path is an explicit stop; uncovered destination switches drop all their
// destinations.
func makeSpec(path []pathStep, uncovered map[topology.SwitchID]bool,
	groups map[topology.SwitchID][]topology.NodeID) sim.WormSpec {
	segs := make([]sim.PathSeg, len(path))
	for i, step := range path {
		seg := sim.PathSeg{Switch: step.sw, NextPort: step.port}
		if uncovered[step.sw] {
			seg.Drops = append([]topology.NodeID(nil), groups[step.sw]...)
		}
		segs[i] = seg
	}
	return sim.WormSpec{Kind: sim.WormPath, Path: segs}
}
