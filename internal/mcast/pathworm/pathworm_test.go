package pathworm

import (
	"testing"

	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func routedCfg(t *testing.T, cfg topology.Config, seed uint64) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func randomSrcDests(r *rng.Source, n, m int) (topology.NodeID, []topology.NodeID) {
	picks := r.Sample(n, m+1)
	src := topology.NodeID(picks[0])
	dests := make([]topology.NodeID, m)
	for i, v := range picks[1:] {
		dests[i] = topology.NodeID(v)
	}
	return src, dests
}

// checkWormLegality verifies the structural legality the simulator will
// enforce at runtime: the stop chain is one contiguous legal up*/down*
// path (each continuation port physically connects consecutive stops and
// never turns up after a down move).
func checkWormLegality(t *testing.T, rt *updown.Routing, w sim.WormSpec) {
	t.Helper()
	phase := updown.PhaseUp
	for i, seg := range w.Path {
		for _, d := range seg.Drops {
			if rt.Topo.NodeSwitch[d] != seg.Switch {
				t.Fatalf("segment %d: drop %d not attached to stop switch %d", i, d, seg.Switch)
			}
		}
		if seg.NextPort == -1 {
			if i != len(w.Path)-1 {
				t.Fatalf("segment %d ends worm early", i)
			}
			continue
		}
		dir := rt.Dirs[seg.Switch][seg.NextPort]
		if dir == updown.DirNone {
			t.Fatalf("segment %d: continuation through non-switch port", i)
		}
		if dir == updown.DirUp && phase == updown.PhaseDown {
			t.Fatalf("segment %d: up turn after down", i)
		}
		if dir == updown.DirDown {
			phase = updown.PhaseDown
		}
		peer := rt.Topo.Conn[seg.Switch][seg.NextPort].Switch
		if peer != w.Path[i+1].Switch {
			t.Fatalf("segment %d: continuation port reaches switch %d, header says %d", i, peer, w.Path[i+1].Switch)
		}
	}
}

func coverAll(t *testing.T, rt *updown.Routing, s Scheme, src topology.NodeID, dests []topology.NodeID) Result {
	t.Helper()
	res, err := s.Cover(rt, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	got := map[topology.NodeID]int{}
	for _, specs := range res.Sends {
		for _, w := range specs {
			checkWormLegality(t, rt, w)
			for _, seg := range w.Path {
				for _, d := range seg.Drops {
					got[d]++
				}
			}
		}
	}
	for _, d := range dests {
		if got[d] != 1 {
			t.Fatalf("dest %d covered %d times", d, got[d])
		}
	}
	if len(got) != len(dests) {
		t.Fatalf("extra deliveries: %d vs %d", len(got), len(dests))
	}
	return res
}

func TestWormsCoverEveryDestExactlyOnce(t *testing.T) {
	cfgs := []topology.Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0},
	}
	for ci, cfg := range cfgs {
		rt := routedCfg(t, cfg, uint64(ci+1))
		r := rng.New(uint64(ci) + 77)
		for trial := 0; trial < 20; trial++ {
			src, dests := randomSrcDests(r, cfg.Nodes, 1+r.Intn(cfg.Nodes-2))
			coverAll(t, rt, New(), src, dests)
		}
	}
}

func TestWormPathsAreShortest(t *testing.T) {
	// Every worm's stop chain must be exactly a shortest legal path from
	// its sender's switch to its terminal.
	rt := routedCfg(t, topology.DefaultConfig(), 5)
	r := rng.New(55)
	for trial := 0; trial < 15; trial++ {
		src, dests := randomSrcDests(r, 32, 16)
		res, err := New().Cover(rt, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		for sender, specs := range res.Sends {
			from := rt.Topo.NodeSwitch[sender]
			for _, w := range specs {
				first := w.Path[0].Switch
				last := w.Path[len(w.Path)-1].Switch
				if first != from {
					t.Fatalf("worm from %d does not start at its sender's switch", sender)
				}
				if got, want := len(w.Path)-1, rt.DistUp(from, last); got != want {
					t.Fatalf("worm %d->%d has %d hops, shortest legal is %d", from, last, got, want)
				}
			}
		}
	}
}

func TestWormCountGrowsWithSwitches(t *testing.T) {
	// The paper's Figure 7 driver: fewer destinations per switch => more
	// worms.
	avgWorms := func(cfg topology.Config, seed uint64) float64 {
		total, count := 0, 0
		for ti := uint64(0); ti < 5; ti++ {
			rt := routedCfg(t, cfg, seed+ti)
			r := rng.New(seed*100 + ti)
			for trial := 0; trial < 10; trial++ {
				src, dests := randomSrcDests(r, cfg.Nodes, 16)
				total += New().Worms(rt, src, dests)
				count++
			}
		}
		return float64(total) / float64(count)
	}
	few := avgWorms(topology.Config{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, 1)
	many := avgWorms(topology.Config{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, 2)
	if many <= few {
		t.Fatalf("worm count did not grow with switches: 8sw=%.2f 32sw=%.2f", few, many)
	}
}

func TestSerialScheduleAllFromSource(t *testing.T) {
	rt := routedCfg(t, topology.Config{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, 3)
	r := rng.New(33)
	src, dests := randomSrcDests(r, 32, 20)
	res := coverAll(t, rt, Scheme{SerialSchedule: true}, src, dests)
	for sender := range res.Sends {
		if sender != src {
			t.Fatalf("serial schedule recruited sender %d", sender)
		}
	}
}

func TestMultiPhaseUsesSecondarySources(t *testing.T) {
	// On a 32-switch topology a 20-way multicast needs several worms; the
	// multi-phase schedule should recruit at least one secondary sender
	// (if it never does, phases collapse to serial and the scheme loses
	// its defining property).
	recruited := false
	for seed := uint64(1); seed <= 5 && !recruited; seed++ {
		rt := routedCfg(t, topology.Config{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, seed)
		r := rng.New(seed * 11)
		for trial := 0; trial < 10; trial++ {
			src, dests := randomSrcDests(r, 32, 20)
			res, err := New().Cover(rt, src, dests)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Sends) > 1 {
				recruited = true
				break
			}
		}
	}
	if !recruited {
		t.Fatal("multi-phase schedule never recruited a secondary sender")
	}
}

func TestScheduleRespectsDataDependencies(t *testing.T) {
	rt := routedCfg(t, topology.Config{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, 4)
	r := rng.New(44)
	for trial := 0; trial < 10; trial++ {
		src, dests := randomSrcDests(r, 32, 20)
		plan, err := New().Plan(rt, sim.DefaultParams(), src, dests, 128)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(32, rt.Topo.NumSwitches); err != nil {
			t.Fatal(err)
		}
		informed := map[topology.NodeID]bool{src: true}
		remaining := map[topology.NodeID][]sim.WormSpec{}
		for s, ws := range plan.HostSends {
			remaining[s] = append([]sim.WormSpec(nil), ws...)
		}
		for rounds := 0; len(remaining) > 0 && rounds < 100; rounds++ {
			progress := false
			for s, ws := range remaining {
				if !informed[s] {
					continue
				}
				for _, w := range ws {
					for _, seg := range w.Path {
						for _, d := range seg.Drops {
							informed[d] = true
						}
					}
				}
				delete(remaining, s)
				progress = true
			}
			if !progress {
				t.Fatalf("trial %d: schedule has senders that never learn the message", trial)
			}
		}
	}
}

func TestSingleSwitchAllDests(t *testing.T) {
	// All destinations on the source's own switch: exactly one worm with
	// one stop and no continuation.
	rt := routedCfg(t, topology.DefaultConfig(), 6)
	groups := map[topology.SwitchID][]topology.NodeID{}
	for n := 0; n < 32; n++ {
		s := rt.Topo.NodeSwitch[n]
		groups[s] = append(groups[s], topology.NodeID(n))
	}
	for _, nodes := range groups {
		if len(nodes) < 3 {
			continue
		}
		src := nodes[0]
		dests := nodes[1:]
		res := coverAll(t, rt, New(), src, dests)
		if res.Worms != 1 || res.Phases != 1 {
			t.Fatalf("got %d worms in %d phases, want 1/1", res.Worms, res.Phases)
		}
		w := res.Sends[src][0]
		if len(w.Path) != 1 || w.Path[0].NextPort != -1 {
			t.Fatalf("degenerate worm shape wrong: %+v", w)
		}
		return
	}
	t.Skip("no switch with 3+ nodes in this topology")
}

func TestPhasesBoundedByLogWorms(t *testing.T) {
	// With binomial sender growth, phases should be far fewer than worms
	// when many worms exist.
	rt := routedCfg(t, topology.Config{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0}, 7)
	r := rng.New(70)
	for trial := 0; trial < 10; trial++ {
		src, dests := randomSrcDests(r, 32, 24)
		res, err := New().Cover(rt, src, dests)
		if err != nil {
			t.Fatal(err)
		}
		if res.Worms >= 4 && res.Phases >= res.Worms {
			t.Fatalf("phases %d not better than serial for %d worms", res.Phases, res.Worms)
		}
	}
}
