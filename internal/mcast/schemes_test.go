package mcast_test

import (
	"testing"

	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/binomial"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func allSchemes() []mcast.Scheme {
	return []mcast.Scheme{binomial.New(), kbinomial.New(), treeworm.New(), pathworm.New()}
}

func routedFamily(t *testing.T, cfg topology.Config, count int, seed uint64) []*updown.Routing {
	t.Helper()
	topos, err := topology.GenerateFamily(cfg, count, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*updown.Routing, len(topos))
	for i, topo := range topos {
		rt, err := updown.New(topo)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rt
	}
	return out
}

func randomSet(r *rng.Source, numNodes, degree int) (topology.NodeID, []topology.NodeID) {
	picks := r.Sample(numNodes, degree+1)
	src := topology.NodeID(picks[0])
	dests := make([]topology.NodeID, 0, degree)
	for _, v := range picks[1:] {
		dests = append(dests, topology.NodeID(v))
	}
	return src, dests
}

// TestAllSchemesEndToEnd runs every scheme on random topologies and random
// destination sets through the full simulator; the plan validator's exact-
// coverage rules plus the simulator's legality panics and conservation
// checks make this the central correctness property of the library.
func TestAllSchemesEndToEnd(t *testing.T) {
	cfgs := []topology.Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0}, // pure tree topology
	}
	p := sim.DefaultParams()
	for ci, cfg := range cfgs {
		for ri, rt := range routedFamily(t, cfg, 4, 1000+uint64(ci)) {
			r := rng.New(uint64(ci*100 + ri))
			for trial := 0; trial < 6; trial++ {
				degree := 1 + r.Intn(cfg.Nodes-2)
				src, dests := randomSet(r, cfg.Nodes, degree)
				for _, sch := range allSchemes() {
					plan, err := sch.Plan(rt, p, src, dests, 128)
					if err != nil {
						t.Fatalf("%s cfg%d topo%d trial%d: Plan: %v", sch.Name(), ci, ri, trial, err)
					}
					n, err := sim.New(rt, p, uint64(trial))
					if err != nil {
						t.Fatal(err)
					}
					m, err := n.RunSingle(plan, 128)
					if err != nil {
						t.Fatalf("%s cfg%d topo%d trial%d: %v", sch.Name(), ci, ri, trial, err)
					}
					if len(m.DoneAt) != len(dests) {
						t.Fatalf("%s: delivered %d/%d", sch.Name(), len(m.DoneAt), len(dests))
					}
					if err := n.CheckConservation(); err != nil {
						t.Fatalf("%s: %v", sch.Name(), err)
					}
				}
			}
		}
	}
}

func TestAllSchemesMultiPacket(t *testing.T) {
	p := sim.DefaultParams()
	for _, rt := range routedFamily(t, topology.DefaultConfig(), 2, 7) {
		r := rng.New(3)
		src, dests := randomSet(r, rt.Topo.NumNodes, 8)
		for _, flits := range []int{1, 64, 128, 129, 512, 1024} {
			for _, sch := range allSchemes() {
				plan, err := sch.Plan(rt, p, src, dests, flits)
				if err != nil {
					t.Fatal(err)
				}
				n, _ := sim.New(rt, p, 1)
				m, err := n.RunSingle(plan, flits)
				if err != nil {
					t.Fatalf("%s flits=%d: %v", sch.Name(), flits, err)
				}
				if len(m.DoneAt) != 8 {
					t.Fatalf("%s flits=%d: incomplete", sch.Name(), flits)
				}
			}
		}
	}
}

func TestSchemesRejectBadArgs(t *testing.T) {
	rt := routedFamily(t, topology.DefaultConfig(), 1, 9)[0]
	p := sim.DefaultParams()
	for _, sch := range allSchemes() {
		if _, err := sch.Plan(rt, p, 0, nil, 128); err == nil {
			t.Errorf("%s accepted empty destination set", sch.Name())
		}
		if _, err := sch.Plan(rt, p, 0, []topology.NodeID{0}, 128); err == nil {
			t.Errorf("%s accepted source in destinations", sch.Name())
		}
		if _, err := sch.Plan(rt, p, 0, []topology.NodeID{1, 1}, 128); err == nil {
			t.Errorf("%s accepted duplicate destination", sch.Name())
		}
		if _, err := sch.Plan(rt, p, 99, []topology.NodeID{1}, 128); err == nil {
			t.Errorf("%s accepted out-of-range source", sch.Name())
		}
	}
}

func TestSchemeNamesStable(t *testing.T) {
	want := map[string]bool{"sw-binomial": true, "ni-kbinomial": true, "sw-tree": true, "sw-path": true}
	for _, sch := range allSchemes() {
		if !want[sch.Name()] {
			t.Errorf("unexpected scheme name %q", sch.Name())
		}
	}
}

func TestClusterBySwitchGroups(t *testing.T) {
	rt := routedFamily(t, topology.DefaultConfig(), 1, 11)[0]
	r := rng.New(5)
	src, dests := randomSet(r, rt.Topo.NumNodes, 20)
	ordered := mcast.ClusterBySwitch(rt, src, dests)
	if len(ordered) != len(dests) {
		t.Fatalf("ordering changed cardinality")
	}
	// Same multiset.
	seen := map[topology.NodeID]int{}
	for _, d := range dests {
		seen[d]++
	}
	for _, d := range ordered {
		seen[d]--
	}
	for d, c := range seen {
		if c != 0 {
			t.Fatalf("node %d count %d after ordering", d, c)
		}
	}
	// Groups contiguous: once we leave a switch we never return.
	visited := map[topology.SwitchID]bool{}
	var cur topology.SwitchID = -1
	for _, d := range ordered {
		s := rt.Topo.NodeSwitch[d]
		if s != cur {
			if visited[s] {
				t.Fatalf("switch %d appears in two separate runs", s)
			}
			visited[s] = true
			cur = s
		}
	}
}

func TestDestSwitches(t *testing.T) {
	rt := routedFamily(t, topology.DefaultConfig(), 1, 13)[0]
	dests := []topology.NodeID{0, 1, 2, 3}
	groups, switches := mcast.DestSwitches(rt, dests)
	total := 0
	for _, sw := range switches {
		total += len(groups[sw])
		for _, d := range groups[sw] {
			if rt.Topo.NodeSwitch[d] != sw {
				t.Fatalf("node %d grouped under wrong switch", d)
			}
		}
	}
	if total != len(dests) {
		t.Fatalf("groups cover %d of %d", total, len(dests))
	}
	for i := 1; i < len(switches); i++ {
		if switches[i-1] >= switches[i] {
			t.Fatal("switch list not ascending")
		}
	}
}
