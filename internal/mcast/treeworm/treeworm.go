// Package treeworm implements the switch-based single-phase multicast: one
// multidestination worm with a bit-string encoded header (paper §3.2.3,
// after Sivaram/Panda/Stunkel, PCRCW'97 and ISCA'97).
//
// All topology knowledge lives in the switches (reachability strings, see
// package updown); the source merely sets the destination bits, so the
// plan is a single host send of a single worm. Multicast completes in one
// communication phase — the property the paper's evaluation finds decisive.
package treeworm

import (
	"mcastsim/internal/mcast"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Scheme is the single bit-string multidestination worm multicast.
type Scheme struct{}

// New returns the scheme.
func New() Scheme { return Scheme{} }

// Name implements mcast.Scheme.
func (Scheme) Name() string { return "sw-tree" }

// Plan implements mcast.Scheme.
func (Scheme) Plan(rt *updown.Routing, _ sim.Params, src topology.NodeID, dests []topology.NodeID, _ int) (*sim.Plan, error) {
	if err := mcast.CheckArgs(rt, src, dests); err != nil {
		return nil, err
	}
	return &sim.Plan{
		Source: src,
		Dests:  dests,
		HostSends: map[topology.NodeID][]sim.WormSpec{
			src: {{Kind: sim.WormTree, DestSet: append([]topology.NodeID(nil), dests...)}},
		},
	}, nil
}

// HeaderFlits reports the wire header cost in an n-node system — the
// §3.3 architectural trade-off: simple encoding, but size grows with the
// system.
func HeaderFlits(numNodes int) int { return sim.TreeHeaderFlits(numNodes) }
