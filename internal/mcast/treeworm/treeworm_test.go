package treeworm

import (
	"testing"

	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func TestPlanShape(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	dests := []topology.NodeID{3, 9, 17}
	plan, err := New().Plan(rt, sim.DefaultParams(), 0, dests, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(32, rt.Topo.NumSwitches); err != nil {
		t.Fatal(err)
	}
	specs := plan.HostSends[0]
	if len(plan.HostSends) != 1 || len(specs) != 1 {
		t.Fatalf("tree scheme must issue exactly one send, got %+v", plan.HostSends)
	}
	if specs[0].Kind != sim.WormTree || len(specs[0].DestSet) != 3 {
		t.Fatalf("bad worm spec %+v", specs[0])
	}
}

func TestPlanCopiesDestSet(t *testing.T) {
	topo, _ := topology.Generate(topology.DefaultConfig(), rng.New(2))
	rt, _ := updown.New(topo)
	dests := []topology.NodeID{1, 2}
	plan, err := New().Plan(rt, sim.DefaultParams(), 0, dests, 128)
	if err != nil {
		t.Fatal(err)
	}
	dests[0] = 31 // caller mutation must not corrupt the plan
	if plan.HostSends[0][0].DestSet[0] != 1 {
		t.Fatal("plan aliases the caller's destination slice")
	}
}

func TestHeaderFlitsGrowsWithSystem(t *testing.T) {
	if HeaderFlits(32) >= HeaderFlits(256) {
		t.Fatal("tree header must grow with system size")
	}
	if HeaderFlits(32) != 5 {
		t.Fatalf("HeaderFlits(32) = %d, want 5", HeaderFlits(32))
	}
}
