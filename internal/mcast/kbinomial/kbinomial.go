// Package kbinomial implements the NI-based multicast scheme: a k-binomial
// tree forwarded at the network interfaces with the First-Packet-First-
// Served (FPFS) discipline (paper §3.2.1, after Kesavan & Panda, ICPP'97).
//
// A k-binomial tree is a binomial tree truncated to at most k children per
// vertex: a vertex that obtains the message keeps forwarding it to new
// children on consecutive sends, up to k of them. The smart NI forwards
// each arriving packet to all children before the next packet (FPFS), so
// the per-hop cost is NI-level, not host-level, and packets pipeline down
// the tree. The optimal k balances tree depth (fewer hops) against the
// serial replication cost per vertex, and depends on the multicast set
// size and the packet count — both captured by the analytic completion
// model below.
package kbinomial

import (
	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Scheme is the NI-based k-binomial multicast.
type Scheme struct {
	// FixedK forces the fanout when > 0; 0 (the default) selects the
	// modeled optimum per multicast.
	FixedK int
}

// New returns the scheme with automatic k selection.
func New() Scheme { return Scheme{} }

// Name implements mcast.Scheme.
func (Scheme) Name() string { return "ni-kbinomial" }

// Plan implements mcast.Scheme.
func (s Scheme) Plan(rt *updown.Routing, p sim.Params, src topology.NodeID, dests []topology.NodeID, msgFlits int) (*sim.Plan, error) {
	if err := mcast.CheckArgs(rt, src, dests); err != nil {
		return nil, err
	}
	k := s.FixedK
	if k <= 0 {
		k = OptimalKSized(p, len(dests), msgFlits,
			sim.UnicastHeaderFlitsFor(rt.Topo.NumNodes, rt.Topo.NumSwitches))
	}
	ordered := mcast.ClusterBySwitch(rt, src, dests)
	tree := make(map[topology.NodeID][]topology.NodeID)
	build(append([]topology.NodeID{src}, ordered...), k, tree)
	return &sim.Plan{
		Source: src,
		Dests:  dests,
		NITree: tree,
	}, nil
}

// Coverage returns the number of nodes a k-binomial tree reaches within d
// forwarding steps: N(d) = 1 + sum_{i=1..min(k,d)} N(d-i) (a vertex sends
// to its i-th child in its i-th step after receiving).
func Coverage(k, d int) int {
	if k < 1 {
		panic("kbinomial: k < 1")
	}
	n := make([]int, d+1)
	n[0] = 1
	const limit = 1 << 30 // clamp to avoid overflow for silly depths
	for t := 1; t <= d; t++ {
		n[t] = 1
		for i := 1; i <= k && i <= t; i++ {
			n[t] += n[t-i]
			if n[t] > limit {
				n[t] = limit
			}
		}
	}
	return n[d]
}

// Depth returns the minimal number of steps a k-binomial tree needs to
// cover m+1 nodes (source plus m destinations).
func Depth(k, m int) int {
	for d := 0; ; d++ {
		if Coverage(k, d) >= m+1 {
			return d
		}
	}
}

// OptimalK picks the fanout minimizing the modeled FPFS completion time
// for m destinations and a msgFlits-flit message under parameters p.
//
// Model: a smart NI charges one receive and one send processing step per
// packet (replication setup covers all children); replicas then serialize
// on the injection line at wire length L each. The first child of a node
// thus lags its parent by one stage s = o_ni,r + o_ni,s + L + h, later
// children by an extra L each, and P packets drain through the widest
// (k·L) pipeline stage:
//
//	T(k) = depth(k)·s + (k-1)·L + (P-1)·max(k·L, o_ni,r+o_ni,s)
//
// Larger k shortens the tree but widens every pipeline stage, which is why
// the optimum shrinks as messages grow (paper §4.2.3).
func OptimalK(p sim.Params, m, msgFlits int) int {
	return OptimalKSized(p, m, msgFlits, sim.UnicastHeaderFlits)
}

// OptimalKSized is OptimalK with an explicit per-worm header size, for
// systems beyond the paper's 256-endpoint id space (the NI forwards
// unicast worms, so the wire length is header + payload). Equals
// OptimalK when headerFlits == sim.UnicastHeaderFlits.
func OptimalKSized(p sim.Params, m, msgFlits, headerFlits int) int {
	packets := p.Packets(msgFlits)
	if packets < 1 {
		packets = 1
	}
	payload := msgFlits
	if payload > p.PacketFlits {
		payload = p.PacketFlits
	}
	wire := event.Time(headerFlits + payload)
	h := p.LinkDelay + 4*(p.RoutingDelay+p.CrossbarDelay+p.LinkDelay) // ~typical path
	stage := p.ONIRecv + p.ONISend + wire + h
	bestK, bestT := 1, event.Time(1)<<62
	maxK := m
	if maxK > 16 {
		maxK = 16
	}
	for k := 1; k <= maxK; k++ {
		d := event.Time(Depth(k, m))
		pipe := event.Time(k) * wire
		if proc := p.ONIRecv + p.ONISend; proc > pipe {
			pipe = proc
		}
		t := d*stage + event.Time(k-1)*wire + event.Time(packets-1)*pipe
		if t < bestT {
			bestK, bestT = k, t
		}
	}
	return bestK
}

// build assigns children subtrees over list (list[0] is the subtree root)
// following the k-binomial size recurrence: the i-th child receives a
// subtree sized for the depth remaining after i serial sends. Contiguous
// blocks of the switch-clustered order keep subtrees topologically local.
func build(list []topology.NodeID, k int, tree map[topology.NodeID][]topology.NodeID) {
	root := list[0]
	rest := list[1:]
	d := Depth(k, len(rest))
	for i := 1; len(rest) > 0 && i <= k && i <= d; i++ {
		size := Coverage(k, d-i)
		if size > len(rest) {
			size = len(rest)
		}
		child := rest[:size]
		rest = rest[size:]
		tree[root] = append(tree[root], child[0])
		build(child, k, tree)
	}
	if len(rest) > 0 {
		// The recurrence guarantees capacity; leftovers indicate a bug.
		panic("kbinomial: tree construction failed to place all nodes")
	}
}
