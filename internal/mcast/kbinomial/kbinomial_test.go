package kbinomial

import (
	"testing"
	"testing/quick"

	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func routed(t *testing.T, seed uint64) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestCoverageBoundaries(t *testing.T) {
	// k=1: a vertex sends to one child, the chain grows by one per step...
	// N(d) = d+1.
	for d := 0; d <= 10; d++ {
		if got := Coverage(1, d); got != d+1 {
			t.Fatalf("Coverage(1,%d) = %d, want %d", d, got, d+1)
		}
	}
	// Unbounded k reduces to the binomial tree: N(d) = 2^d.
	for d := 0; d <= 16; d++ {
		if got := Coverage(d+1, d); got != 1<<d {
			t.Fatalf("Coverage(inf,%d) = %d, want %d", d, got, 1<<d)
		}
	}
	// Fibonacci for k=2: 1,2,4,7,12,20 (N(d)=1+N(d-1)+N(d-2)).
	want := []int{1, 2, 4, 7, 12, 20, 33}
	for d, w := range want {
		if got := Coverage(2, d); got != w {
			t.Fatalf("Coverage(2,%d) = %d, want %d", d, got, w)
		}
	}
}

func TestCoverageMonotone(t *testing.T) {
	f := func(kRaw, dRaw uint8) bool {
		k := 1 + int(kRaw)%8
		d := int(dRaw) % 14
		return Coverage(k, d) <= Coverage(k, d+1) && Coverage(k, d) <= Coverage(k+1, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDepthInverse(t *testing.T) {
	for k := 1; k <= 6; k++ {
		for m := 1; m <= 200; m++ {
			d := Depth(k, m)
			if Coverage(k, d) < m+1 {
				t.Fatalf("Depth(%d,%d)=%d does not cover", k, m, d)
			}
			if d > 0 && Coverage(k, d-1) >= m+1 {
				t.Fatalf("Depth(%d,%d)=%d not minimal", k, m, d)
			}
		}
	}
}

func childCounts(tree map[topology.NodeID][]topology.NodeID) map[topology.NodeID]int {
	out := map[topology.NodeID]int{}
	for parent, kids := range tree {
		out[parent] = len(kids)
	}
	return out
}

func TestBuildRespectsK(t *testing.T) {
	rt := routed(t, 1)
	r := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		m := 1 + r.Intn(31)
		k := 1 + r.Intn(6)
		picks := r.Sample(32, m+1)
		src := topology.NodeID(picks[0])
		dests := make([]topology.NodeID, m)
		for i, v := range picks[1:] {
			dests[i] = topology.NodeID(v)
		}
		plan, err := Scheme{FixedK: k}.Plan(rt, sim.DefaultParams(), src, dests, 128)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(32, rt.Topo.NumSwitches); err != nil {
			t.Fatalf("m=%d k=%d: %v", m, k, err)
		}
		for parent, c := range childCounts(plan.NITree) {
			if c > k {
				t.Fatalf("m=%d k=%d: node %d has %d children", m, k, parent, c)
			}
		}
	}
}

// treeDepthFPFS computes the forwarding-step depth of the NI tree: child i
// (0-based) of a node at step t receives at step t+i+1.
func treeDepthFPFS(tree map[topology.NodeID][]topology.NodeID, src topology.NodeID) int {
	var walk func(n topology.NodeID, at int) int
	walk = func(n topology.NodeID, at int) int {
		worst := at
		for i, kid := range tree[n] {
			if d := walk(kid, at+i+1); d > worst {
				worst = d
			}
		}
		return worst
	}
	return walk(src, 0)
}

func TestBuildDepthMatchesTheory(t *testing.T) {
	rt := routed(t, 2)
	r := rng.New(10)
	for trial := 0; trial < 30; trial++ {
		m := 1 + r.Intn(31)
		k := 1 + r.Intn(6)
		picks := r.Sample(32, m+1)
		src := topology.NodeID(picks[0])
		dests := make([]topology.NodeID, m)
		for i, v := range picks[1:] {
			dests[i] = topology.NodeID(v)
		}
		plan, err := Scheme{FixedK: k}.Plan(rt, sim.DefaultParams(), src, dests, 128)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := treeDepthFPFS(plan.NITree, src), Depth(k, m); got != want {
			t.Fatalf("m=%d k=%d: FPFS depth %d, want %d", m, k, got, want)
		}
	}
}

func TestOptimalKShrinksWithMessageLength(t *testing.T) {
	p := sim.DefaultParams()
	k1 := OptimalK(p, 15, 128)    // 1 packet
	k8 := OptimalK(p, 15, 128*16) // 16 packets
	if k8 > k1 {
		t.Fatalf("optimal k grew with message length: %d -> %d", k1, k8)
	}
	if k1 < 1 || k8 < 1 {
		t.Fatal("optimal k below 1")
	}
}

func TestOptimalKSingleDest(t *testing.T) {
	if k := OptimalK(sim.DefaultParams(), 1, 128); k != 1 {
		t.Fatalf("OptimalK(m=1) = %d", k)
	}
}

func TestPlanIsNIMode(t *testing.T) {
	rt := routed(t, 3)
	plan, err := New().Plan(rt, sim.DefaultParams(), 0, []topology.NodeID{1, 2, 3}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NITree == nil || plan.HostSends != nil {
		t.Fatal("kbinomial must use the NI-tree mode")
	}
}
