// Package binomial implements the traditional multi-phase software
// multicast (paper §3.1): in every communication step each node holding
// the message forwards one unicast copy to a node that lacks it, so a
// multicast to m destinations completes in ceil(log2(m+1)) steps — the best
// achievable with unicast primitives and full host involvement per hop.
package binomial

import (
	"mcastsim/internal/mcast"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Scheme is the software binomial-tree multicast baseline.
type Scheme struct{}

// New returns the baseline scheme.
func New() Scheme { return Scheme{} }

// Name implements mcast.Scheme.
func (Scheme) Name() string { return "sw-binomial" }

// Plan implements mcast.Scheme. Destinations are switch-clustered so the
// recursive halves stay topologically local (reduces link contention
// between concurrent phases).
func (Scheme) Plan(rt *updown.Routing, _ sim.Params, src topology.NodeID, dests []topology.NodeID, _ int) (*sim.Plan, error) {
	if err := mcast.CheckArgs(rt, src, dests); err != nil {
		return nil, err
	}
	ordered := mcast.ClusterBySwitch(rt, src, dests)
	sends := make(map[topology.NodeID][]sim.WormSpec)
	build(append([]topology.NodeID{src}, ordered...), sends)
	return &sim.Plan{
		Source:    src,
		Dests:     dests,
		HostSends: sends,
	}, nil
}

// build constructs the binomial recursion over list (list[0] is the root
// holding the message): the root sends to the head of the far half, then
// both halves recurse concurrently. Sends appended to sends[root] are in
// phase order; the simulator's host serialization reproduces the step
// structure.
func build(list []topology.NodeID, sends map[topology.NodeID][]sim.WormSpec) {
	for len(list) > 1 {
		half := (len(list) + 1) / 2
		far := list[half:]
		sends[list[0]] = append(sends[list[0]], sim.WormSpec{Kind: sim.WormUnicast, Dest: far[0]})
		build(far, sends)
		list = list[:half]
	}
}

// Steps returns the number of communication steps the plan needs for m
// destinations: ceil(log2(m+1)).
func Steps(m int) int {
	steps := 0
	for covered := 1; covered < m+1; covered *= 2 {
		steps++
	}
	return steps
}
