package binomial

import (
	"testing"

	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func routed(t *testing.T, seed uint64) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestSteps(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 31: 5}
	for m, want := range cases {
		if got := Steps(m); got != want {
			t.Errorf("Steps(%d) = %d, want %d", m, got, want)
		}
	}
}

// phaseDepth computes, for a host-sends plan, the communication step at
// which each destination receives: sender's own receive step + 1 + its
// position in the sender's send list.
func phaseDepth(plan *sim.Plan) map[topology.NodeID]int {
	depth := map[topology.NodeID]int{plan.Source: 0}
	// Iterate to fixpoint (sends form a DAG rooted at the source).
	for changed := true; changed; {
		changed = false
		for sender, specs := range plan.HostSends {
			d, ok := depth[sender]
			if !ok {
				continue
			}
			for i, w := range specs {
				nd := d + i + 1
				if cur, ok := depth[w.Dest]; !ok || nd < cur {
					depth[w.Dest] = nd
					changed = true
				}
			}
		}
	}
	return depth
}

func TestPlanStepCountMatchesTheory(t *testing.T) {
	rt := routed(t, 1)
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		m := 1 + r.Intn(31)
		picks := r.Sample(32, m+1)
		src := topology.NodeID(picks[0])
		dests := make([]topology.NodeID, m)
		for i, v := range picks[1:] {
			dests[i] = topology.NodeID(v)
		}
		plan, err := New().Plan(rt, sim.DefaultParams(), src, dests, 128)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(32, rt.Topo.NumSwitches); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		depth := phaseDepth(plan)
		worst := 0
		for _, d := range dests {
			dd, ok := depth[d]
			if !ok {
				t.Fatalf("m=%d: destination %d unreachable in plan", m, d)
			}
			if dd > worst {
				worst = dd
			}
		}
		if want := Steps(m); worst != want {
			t.Fatalf("m=%d: plan completes in %d steps, want %d", m, worst, want)
		}
	}
}

func TestPlanUsesOnlyUnicast(t *testing.T) {
	rt := routed(t, 3)
	plan, err := New().Plan(rt, sim.DefaultParams(), 0, []topology.NodeID{1, 2, 3, 4, 5}, 128)
	if err != nil {
		t.Fatal(err)
	}
	for sender, specs := range plan.HostSends {
		for _, w := range specs {
			if w.Kind != sim.WormUnicast {
				t.Fatalf("sender %d uses %v worm", sender, w.Kind)
			}
		}
	}
	if plan.NITree != nil {
		t.Fatal("baseline must not use NI support")
	}
}

func TestSingleDestination(t *testing.T) {
	rt := routed(t, 4)
	plan, err := New().Plan(rt, sim.DefaultParams(), 3, []topology.NodeID{9}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.HostSends) != 1 || len(plan.HostSends[3]) != 1 {
		t.Fatalf("degenerate plan wrong: %+v", plan.HostSends)
	}
}
