// Package groupplan maintains a multicast plan for one dynamic group
// (see sim/group.go): a stateful wrapper over a mcast.Scheme that
// repairs the plan on membership deltas instead of replanning every
// send.
//
// The repair rules follow the paper's architectural split:
//
//   - NI-based k-binomial trees live in per-node NI forwarding tables,
//     so a membership delta is an INCREMENTAL SPLICE: a join attaches
//     one leaf under a deterministic parent (one NI table entry
//     written), a leave re-parents the leaver's children onto its parent
//     (one entry per adopted child plus the removal). The rest of the
//     tree — and every other group's cached routes — is untouched.
//
//   - Switch-based worms carry their destination encoding in the wire
//     header (a bit string for tree worms, node-ID/port-mask segments
//     for path worms), so any delta forces a FULL REGENERATION: the
//     source replans and re-encodes the header before the next send.
//
// Each Apply returns the new plan plus a modeled RepairCost in cycles;
// the churn driver defers subsequent sends past the repair, which is how
// "tree-update latency" becomes a measurable axis. Plans are
// copy-on-write: Apply never mutates a previously returned *sim.Plan, so
// in-flight messages keep routing on the tree they were sent with.
package groupplan

import (
	"fmt"
	"sort"

	"mcastsim/internal/bitset"
	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// RepairCost models one membership repair.
type RepairCost struct {
	// Cycles is the modeled latency before the repaired plan is usable
	// for new sends.
	Cycles event.Time
	// Edges is the number of tree edges rewritten (NI table entries for
	// the NI scheme; the full destination count on a regeneration).
	Edges int
	// Rebuilt reports whether the whole plan was regenerated rather than
	// spliced.
	Rebuilt bool
}

// Planner maintains one group's plan for a fixed source.
type Planner interface {
	// Scheme returns the wrapped scheme.
	Scheme() mcast.Scheme
	// Init builds the initial plan. For every scheme it delegates to
	// Scheme().Plan verbatim, so a zero-churn planner is byte-identical
	// to the static path.
	Init(rt *updown.Routing, p sim.Params, src topology.NodeID, members []topology.NodeID, msgFlits int) (*sim.Plan, error)
	// Apply repairs the plan for one membership delta and returns the new
	// plan (a fresh value; prior plans stay valid for in-flight
	// messages). Redundant deltas (joining a member, removing a
	// non-member) return the current plan at zero cost.
	Apply(rt *updown.Routing, p sim.Params, ev sim.MembershipEvent, msgFlits int) (*sim.Plan, RepairCost, error)
	// Members returns the planner's current member view in ascending node
	// order (a fresh slice).
	Members() []topology.NodeID
}

// New returns the repair planner for s: the incremental splicer for the
// NI-based k-binomial scheme, the regenerating planner for everything
// header-encoded.
func New(s mcast.Scheme) Planner {
	if ks, ok := s.(kbinomial.Scheme); ok {
		return &niPlanner{scheme: ks}
	}
	return &rebuildPlanner{scheme: s}
}

// memberIndex returns the position of node in the ascending slice, or -1.
func memberIndex(members []topology.NodeID, node topology.NodeID) int {
	i := sort.Search(len(members), func(i int) bool { return members[i] >= node })
	if i < len(members) && members[i] == node {
		return i
	}
	return -1
}

// insertMember adds node keeping ascending order; removeMember deletes it.
func insertMember(members []topology.NodeID, node topology.NodeID) []topology.NodeID {
	i := sort.Search(len(members), func(i int) bool { return members[i] >= node })
	members = append(members, 0)
	copy(members[i+1:], members[i:])
	members[i] = node
	return members
}

func removeMember(members []topology.NodeID, i int) []topology.NodeID {
	return append(members[:i], members[i+1:]...)
}

// --- NI-based incremental splicer ---

type niPlanner struct {
	scheme kbinomial.Scheme
	src    topology.NodeID
	flits  int
	k      int

	members []topology.NodeID // ascending
	tree    map[topology.NodeID][]topology.NodeID
}

func (pl *niPlanner) Scheme() mcast.Scheme { return pl.scheme }

func (pl *niPlanner) Members() []topology.NodeID {
	return append([]topology.NodeID(nil), pl.members...)
}

func (pl *niPlanner) Init(rt *updown.Routing, p sim.Params, src topology.NodeID, members []topology.NodeID, msgFlits int) (*sim.Plan, error) {
	plan, err := pl.scheme.Plan(rt, p, src, members, msgFlits)
	if err != nil {
		return nil, err
	}
	pl.src = src
	pl.flits = msgFlits
	// The fanout is frozen at the initial optimum: incremental repair
	// trades re-optimization for locality (a full rebuild would re-derive
	// k for the new member count; the splice path deliberately does not).
	pl.k = pl.scheme.FixedK
	if pl.k <= 0 {
		pl.k = kbinomial.OptimalKSized(p, len(members), msgFlits,
			sim.UnicastHeaderFlitsFor(rt.Topo.NumNodes, rt.Topo.NumSwitches))
	}
	pl.members = append(pl.members[:0], members...)
	sort.Slice(pl.members, func(i, j int) bool { return pl.members[i] < pl.members[j] })
	// Deep-copy the working tree: the returned plan may be in flight when
	// the first splice lands.
	pl.tree = make(map[topology.NodeID][]topology.NodeID, len(plan.NITree))
	for v, kids := range plan.NITree {
		pl.tree[v] = append([]topology.NodeID(nil), kids...)
	}
	return plan, nil
}

func (pl *niPlanner) Apply(rt *updown.Routing, p sim.Params, ev sim.MembershipEvent, msgFlits int) (*sim.Plan, RepairCost, error) {
	if pl.tree == nil {
		return nil, RepairCost{}, fmt.Errorf("groupplan: Apply before Init")
	}
	idx := memberIndex(pl.members, ev.Node)
	switch ev.Kind {
	case sim.MemberJoin:
		if ev.Node == pl.src || idx >= 0 {
			return pl.publish(), RepairCost{}, nil
		}
		parent := pl.pickParent(rt, ev.Node)
		pl.tree[parent] = append(append([]topology.NodeID(nil), pl.tree[parent]...), ev.Node)
		pl.members = insertMember(pl.members, ev.Node)
		// One NI forwarding-table entry is written (the parent's), at NI
		// processing cost.
		cost := RepairCost{Cycles: p.ONISend, Edges: 1}
		return pl.publish(), cost, nil
	case sim.MemberLeave:
		if idx < 0 {
			return pl.publish(), RepairCost{}, nil
		}
		parent := pl.findParent(ev.Node)
		adopted := pl.tree[ev.Node]
		delete(pl.tree, ev.Node)
		kids := make([]topology.NodeID, 0, len(pl.tree[parent])-1+len(adopted))
		for _, c := range pl.tree[parent] {
			if c != ev.Node {
				kids = append(kids, c)
			}
		}
		// The leaver's children are adopted by its parent, preserving
		// their forwarding order. The parent may temporarily exceed k —
		// the graceful-degradation cost of splicing, visible in the
		// post-churn steady-state latency.
		kids = append(kids, adopted...)
		if len(kids) == 0 {
			delete(pl.tree, parent)
		} else {
			pl.tree[parent] = kids
		}
		pl.members = removeMember(pl.members, idx)
		cost := RepairCost{Cycles: p.ONISend * event.Time(1+len(adopted)), Edges: 1 + len(adopted)}
		return pl.publish(), cost, nil
	default:
		return nil, RepairCost{}, fmt.Errorf("groupplan: unknown membership kind %d", ev.Kind)
	}
}

// pickParent chooses where a joiner attaches: the same-switch member (or
// source) with spare fanout and the fewest children, falling back to the
// least-loaded vertex overall; ties break on lowest node ID. Purely a
// function of the current tree, so repair sequences are deterministic.
func (pl *niPlanner) pickParent(rt *updown.Routing, node topology.NodeID) topology.NodeID {
	home := rt.Topo.NodeSwitch[node]
	best, bestLoad := topology.NodeID(-1), 1<<30
	bestAny, bestAnyLoad := pl.src, 1<<30
	consider := func(v topology.NodeID) {
		load := len(pl.tree[v])
		if load < bestAnyLoad || (load == bestAnyLoad && v < bestAny) {
			bestAny, bestAnyLoad = v, load
		}
		if load >= pl.k {
			return
		}
		if rt.Topo.NodeSwitch[v] == home && (load < bestLoad || (load == bestLoad && v < best)) {
			best, bestLoad = v, load
		}
	}
	consider(pl.src)
	for _, m := range pl.members {
		consider(m)
	}
	if best >= 0 {
		return best
	}
	return bestAny
}

// findParent scans the tree for the vertex forwarding to node.
func (pl *niPlanner) findParent(node topology.NodeID) topology.NodeID {
	if containsNode(pl.tree[pl.src], node) {
		return pl.src
	}
	for _, m := range pl.members {
		if containsNode(pl.tree[m], node) {
			return m
		}
	}
	panic(fmt.Sprintf("groupplan: member %d not in tree", node))
}

func containsNode(list []topology.NodeID, node topology.NodeID) bool {
	for _, c := range list {
		if c == node {
			return true
		}
	}
	return false
}

// publish snapshots the working tree into a fresh plan. In-flight
// messages hold older plans; they must never see later splices.
func (pl *niPlanner) publish() *sim.Plan {
	tree := make(map[topology.NodeID][]topology.NodeID, len(pl.tree))
	for v, kids := range pl.tree {
		tree[v] = append([]topology.NodeID(nil), kids...)
	}
	return &sim.Plan{
		Source: pl.src,
		Dests:  append([]topology.NodeID(nil), pl.members...),
		NITree: tree,
	}
}

// --- header-encoded regeneration ---

type rebuildPlanner struct {
	scheme  mcast.Scheme
	src     topology.NodeID
	flits   int
	members []topology.NodeID // ascending
	plan    *sim.Plan
}

func (pl *rebuildPlanner) Scheme() mcast.Scheme { return pl.scheme }

func (pl *rebuildPlanner) Members() []topology.NodeID {
	return append([]topology.NodeID(nil), pl.members...)
}

func (pl *rebuildPlanner) Init(rt *updown.Routing, p sim.Params, src topology.NodeID, members []topology.NodeID, msgFlits int) (*sim.Plan, error) {
	plan, err := pl.scheme.Plan(rt, p, src, members, msgFlits)
	if err != nil {
		return nil, err
	}
	pl.src = src
	pl.flits = msgFlits
	pl.members = append(pl.members[:0], members...)
	sort.Slice(pl.members, func(i, j int) bool { return pl.members[i] < pl.members[j] })
	pl.plan = plan
	return plan, nil
}

func (pl *rebuildPlanner) Apply(rt *updown.Routing, p sim.Params, ev sim.MembershipEvent, msgFlits int) (*sim.Plan, RepairCost, error) {
	if pl.plan == nil {
		return nil, RepairCost{}, fmt.Errorf("groupplan: Apply before Init")
	}
	idx := memberIndex(pl.members, ev.Node)
	switch ev.Kind {
	case sim.MemberJoin:
		if ev.Node == pl.src || idx >= 0 {
			return pl.plan, RepairCost{}, nil
		}
		pl.members = insertMember(pl.members, ev.Node)
	case sim.MemberLeave:
		if idx < 0 {
			return pl.plan, RepairCost{}, nil
		}
		pl.members = removeMember(pl.members, idx)
	default:
		return nil, RepairCost{}, fmt.Errorf("groupplan: unknown membership kind %d", ev.Kind)
	}
	plan, err := pl.scheme.Plan(rt, p, pl.src, append([]topology.NodeID(nil), pl.members...), msgFlits)
	if err != nil {
		return nil, RepairCost{}, err
	}
	pl.plan = plan
	cost := RepairCost{Cycles: p.OHostSend + event.Time(encodeFlits(rt, p, plan)), Edges: len(pl.members), Rebuilt: true}
	return plan, cost, nil
}

// encodeFlits models the header re-encoding work of a regenerated plan:
// the source's software walks every spec it must emit and rewrites its
// wire header (destination string or run list, path segments, or unicast
// IDs). Sized by the system shape and the configured destination coding,
// so the modeled cost matches what the wire actually carries.
func encodeFlits(rt *updown.Routing, p sim.Params, plan *sim.Plan) int {
	t := rt.Topo
	total := 0
	for _, specs := range plan.HostSends {
		for i := range specs {
			switch specs[i].Kind {
			case sim.WormTree:
				if p.DestCoding == sim.HeaderIval {
					set := bitset.New(t.NumNodes)
					for _, d := range specs[i].DestSet {
						set.Add(int(d))
					}
					total += sim.TreeIvalHeaderFlits(set)
				} else {
					total += sim.TreeHeaderFlits(t.NumNodes)
				}
			case sim.WormPath:
				total += sim.PathHeaderFlitsFor(len(specs[i].Path), t.PortsPerSwitch, t.NumNodes, t.NumSwitches)
			default:
				total += sim.UnicastHeaderFlitsFor(t.NumNodes, t.NumSwitches)
			}
		}
	}
	return total
}
