package groupplan

import (
	"reflect"
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func routed(t *testing.T, seed uint64) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func schemes() []mcast.Scheme {
	return []mcast.Scheme{kbinomial.New(), treeworm.New(), pathworm.New()}
}

// drawGroup picks a source and an initial ascending member set.
func drawGroup(r *rng.Source, numNodes, size int) (topology.NodeID, []topology.NodeID) {
	picks := r.Sample(numNodes, size+1)
	src := topology.NodeID(picks[0])
	members := make([]topology.NodeID, size)
	for i, v := range picks[1:] {
		members[i] = topology.NodeID(v)
	}
	sortNodes(members)
	return src, members
}

func sortNodes(list []topology.NodeID) {
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j] < list[j-1]; j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
}

// TestInitMatchesSchemePlan pins the zero-churn identity: Init is the
// scheme's own Plan, bit for bit, for every compared scheme.
func TestInitMatchesSchemePlan(t *testing.T) {
	rt := routed(t, 1)
	p := sim.DefaultParams()
	r := rng.New(7)
	src, members := drawGroup(r, rt.Topo.NumNodes, 12)
	for _, s := range schemes() {
		pl := New(s)
		got, err := pl.Init(rt, p, src, members, 128)
		if err != nil {
			t.Fatalf("%s: Init: %v", s.Name(), err)
		}
		want, err := s.Plan(rt, p, src, members, 128)
		if err != nil {
			t.Fatalf("%s: Plan: %v", s.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Init diverged from Scheme.Plan:\n got  %+v\n want %+v", s.Name(), got, want)
		}
	}
}

// reachable walks an NI forwarding tree from src and returns every node
// it forwards to, failing on duplicates (a vertex with two parents is not
// a tree).
func reachable(t *testing.T, tree map[topology.NodeID][]topology.NodeID, src topology.NodeID) map[topology.NodeID]bool {
	t.Helper()
	seen := map[topology.NodeID]bool{}
	stack := []topology.NodeID{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range tree[v] {
			if seen[c] {
				t.Fatalf("node %d has two parents", c)
			}
			seen[c] = true
			stack = append(stack, c)
		}
	}
	return seen
}

// TestIncrementalEqualsScratchRebuild is the core property: any seeded
// join/leave interleaving applied incrementally through Apply leaves the
// planner holding exactly the membership a from-scratch replay computes,
// with a structurally valid plan addressed to exactly that membership —
// for the splicing NI planner and the regenerating planners alike.
func TestIncrementalEqualsScratchRebuild(t *testing.T) {
	rt := routed(t, 2)
	p := sim.DefaultParams()
	numNodes := rt.Topo.NumNodes
	for _, s := range schemes() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 15; trial++ {
				r := rng.New(uint64(trial)*31 + 5)
				src, members := drawGroup(r, numNodes, 2+r.Intn(10))
				pl := New(s)
				plan, err := pl.Init(rt, p, src, members, 128)
				if err != nil {
					t.Fatalf("trial %d: Init: %v", trial, err)
				}
				scratch := map[topology.NodeID]bool{}
				for _, m := range members {
					scratch[m] = true
				}
				for step := 0; step < 30; step++ {
					ev := sim.MembershipEvent{
						At:   event.Time(step + 1),
						Node: topology.NodeID(r.Intn(numNodes)),
						Kind: sim.MembershipKind(r.Intn(2)),
					}
					if ev.Kind == sim.MemberLeave && scratch[ev.Node] && len(scratch) == 1 {
						continue // never empty the group
					}
					plan, _, err = pl.Apply(rt, p, ev, 128)
					if err != nil {
						t.Fatalf("trial %d step %d: Apply(%+v): %v", trial, step, ev, err)
					}
					if ev.Node != src {
						if ev.Kind == sim.MemberJoin {
							scratch[ev.Node] = true
						} else {
							delete(scratch, ev.Node)
						}
					}

					got := pl.Members()
					if len(got) != len(scratch) {
						t.Fatalf("trial %d step %d: %d members, scratch %d", trial, step, len(got), len(scratch))
					}
					for i, m := range got {
						if !scratch[m] {
							t.Fatalf("trial %d step %d: member %d not in scratch", trial, step, m)
						}
						if i > 0 && got[i-1] >= m {
							t.Fatalf("trial %d step %d: members not ascending: %v", trial, step, got)
						}
					}
					if err := plan.Validate(numNodes, rt.Topo.NumSwitches); err != nil {
						t.Fatalf("trial %d step %d: invalid plan: %v", trial, step, err)
					}
					if len(plan.Dests) != len(scratch) {
						t.Fatalf("trial %d step %d: plan addresses %d dests, membership is %d",
							trial, step, len(plan.Dests), len(scratch))
					}
					for _, d := range plan.Dests {
						if !scratch[d] {
							t.Fatalf("trial %d step %d: plan addresses non-member %d", trial, step, d)
						}
					}
					if plan.NITree != nil {
						seen := reachable(t, plan.NITree, src)
						for m := range scratch {
							if !seen[m] {
								t.Fatalf("trial %d step %d: spliced tree does not reach member %d", trial, step, m)
							}
						}
						if len(seen) != len(scratch) {
							t.Fatalf("trial %d step %d: tree reaches %d nodes, membership is %d",
								trial, step, len(seen), len(scratch))
						}
					}
				}
			}
		})
	}
}

// TestApplyCopyOnWrite pins the in-flight contract: a plan returned
// earlier is never mutated by later repairs.
func TestApplyCopyOnWrite(t *testing.T) {
	rt := routed(t, 3)
	p := sim.DefaultParams()
	r := rng.New(11)
	for _, s := range schemes() {
		src, members := drawGroup(r, rt.Topo.NumNodes, 8)
		pl := New(s)
		plan0, err := pl.Init(rt, p, src, members, 128)
		if err != nil {
			t.Fatalf("%s: Init: %v", s.Name(), err)
		}
		frozenDests := append([]topology.NodeID(nil), plan0.Dests...)
		frozenTree := map[topology.NodeID][]topology.NodeID{}
		for v, kids := range plan0.NITree {
			frozenTree[v] = append([]topology.NodeID(nil), kids...)
		}
		// A join and a leave, both real deltas.
		joiner := topology.NodeID(-1)
		for v := 0; v < rt.Topo.NumNodes; v++ {
			n := topology.NodeID(v)
			if n != src && memberIndex(pl.Members(), n) < 0 {
				joiner = n
				break
			}
		}
		for _, ev := range []sim.MembershipEvent{
			{At: 1, Node: joiner, Kind: sim.MemberJoin},
			{At: 2, Node: members[0], Kind: sim.MemberLeave},
		} {
			if _, _, err := pl.Apply(rt, p, ev, 128); err != nil {
				t.Fatalf("%s: Apply: %v", s.Name(), err)
			}
		}
		if !reflect.DeepEqual(plan0.Dests, frozenDests) {
			t.Fatalf("%s: repair mutated an already-published plan's Dests", s.Name())
		}
		if plan0.NITree != nil && !reflect.DeepEqual(plan0.NITree, frozenTree) {
			t.Fatalf("%s: repair mutated an already-published plan's NITree", s.Name())
		}
	}
}

// TestRepairCostsPerScheme pins the architectural asymmetry the paper's
// split predicts: NI-table splices cost one table write per edge and are
// never rebuilds; header-encoded schemes always regenerate and pay the
// host-software re-encode.
func TestRepairCostsPerScheme(t *testing.T) {
	rt := routed(t, 4)
	p := sim.DefaultParams()
	r := rng.New(13)
	src, members := drawGroup(r, rt.Topo.NumNodes, 8)
	joiner := topology.NodeID(-1)
	for v := 0; v < rt.Topo.NumNodes; v++ {
		n := topology.NodeID(v)
		if n != src && memberIndex(members, n) < 0 {
			joiner = n
			break
		}
	}
	join := sim.MembershipEvent{At: 1, Node: joiner, Kind: sim.MemberJoin}

	ni := New(kbinomial.New())
	if _, err := ni.Init(rt, p, src, members, 128); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if _, cost, err := ni.Apply(rt, p, join, 128); err != nil {
		t.Fatalf("Apply: %v", err)
	} else if cost.Rebuilt || cost.Edges != 1 || cost.Cycles != p.ONISend {
		t.Fatalf("NI join cost = %+v, want one table write at ONISend", cost)
	}
	leave := sim.MembershipEvent{At: 2, Node: joiner, Kind: sim.MemberLeave}
	if _, cost, err := ni.Apply(rt, p, leave, 128); err != nil {
		t.Fatalf("Apply: %v", err)
	} else if cost.Rebuilt || cost.Edges < 1 || cost.Cycles < p.ONISend {
		t.Fatalf("NI leave cost = %+v, want >= one table write", cost)
	}

	for _, s := range []mcast.Scheme{treeworm.New(), pathworm.New()} {
		pl := New(s)
		if _, err := pl.Init(rt, p, src, members, 128); err != nil {
			t.Fatalf("%s: Init: %v", s.Name(), err)
		}
		_, cost, err := pl.Apply(rt, p, join, 128)
		if err != nil {
			t.Fatalf("%s: Apply: %v", s.Name(), err)
		}
		if !cost.Rebuilt || cost.Cycles < p.OHostSend {
			t.Fatalf("%s: join cost = %+v, want a full regeneration at >= OHostSend", s.Name(), cost)
		}
	}
}

// TestRedundantDeltasAreFree pins the no-op contract: joining a member,
// removing a non-member, or joining the source costs nothing and changes
// nothing.
func TestRedundantDeltasAreFree(t *testing.T) {
	rt := routed(t, 5)
	p := sim.DefaultParams()
	r := rng.New(17)
	for _, s := range schemes() {
		src, members := drawGroup(r, rt.Topo.NumNodes, 6)
		pl := New(s)
		if _, err := pl.Init(rt, p, src, members, 128); err != nil {
			t.Fatalf("%s: Init: %v", s.Name(), err)
		}
		outsider := topology.NodeID(-1)
		for v := 0; v < rt.Topo.NumNodes; v++ {
			n := topology.NodeID(v)
			if n != src && memberIndex(members, n) < 0 {
				outsider = n
				break
			}
		}
		for name, ev := range map[string]sim.MembershipEvent{
			"join member":      {At: 1, Node: members[0], Kind: sim.MemberJoin},
			"leave non-member": {At: 2, Node: outsider, Kind: sim.MemberLeave},
			"join source":      {At: 3, Node: src, Kind: sim.MemberJoin},
		} {
			_, cost, err := pl.Apply(rt, p, ev, 128)
			if err != nil {
				t.Fatalf("%s %s: Apply: %v", s.Name(), name, err)
			}
			if cost != (RepairCost{}) {
				t.Fatalf("%s %s: cost = %+v, want zero", s.Name(), name, cost)
			}
			if got := pl.Members(); len(got) != len(members) {
				t.Fatalf("%s %s: membership changed to %v", s.Name(), name, got)
			}
		}
	}
}

func TestApplyBeforeInitErrors(t *testing.T) {
	rt := routed(t, 6)
	for _, s := range schemes() {
		pl := New(s)
		ev := sim.MembershipEvent{At: 1, Node: 1, Kind: sim.MemberJoin}
		if _, _, err := pl.Apply(rt, sim.DefaultParams(), ev, 128); err == nil {
			t.Fatalf("%s: Apply before Init succeeded", s.Name())
		}
	}
}
