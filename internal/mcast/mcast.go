// Package mcast defines the multicast-scheme abstraction the experiments
// compare, plus helpers shared by the concrete planners in its
// subpackages:
//
//   - binomial: multi-phase software unicast multicast (paper §3.1, the
//     traditional baseline),
//   - kbinomial: the NI-based scheme — k-binomial tree with FPFS smart-NI
//     forwarding (paper §3.2.1),
//   - treeworm: the switch-based single-phase scheme — one bit-string
//     multidestination worm (paper §3.2.3),
//   - pathworm: the switch-based multi-phase scheme — MDP-LG multi-drop
//     path worms (paper §3.2.4).
//
// A Scheme turns (routing state, system parameters, source, destinations,
// message length) into a sim.Plan; the simulator does the rest. Schemes are
// stateless and safe for reuse across messages and topologies.
package mcast

import (
	"fmt"
	"sort"

	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Scheme builds executable multicast plans.
type Scheme interface {
	// Name is a short stable identifier ("ni-kbinomial", "sw-tree", ...).
	Name() string
	// Plan constructs the scheme's strategy for one multicast. msgFlits is
	// the payload length (schemes that adapt to packetization use it).
	Plan(rt *updown.Routing, p sim.Params, src topology.NodeID, dests []topology.NodeID, msgFlits int) (*sim.Plan, error)
}

// CheckArgs validates the (src, dests) pair against the routed topology;
// planners call it first so all schemes reject bad input identically.
func CheckArgs(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID) error {
	n := rt.Topo.NumNodes
	if int(src) < 0 || int(src) >= n {
		return fmt.Errorf("mcast: source %d out of range", src)
	}
	if len(dests) == 0 {
		return fmt.Errorf("mcast: empty destination set")
	}
	seen := make(map[topology.NodeID]bool, len(dests))
	for _, d := range dests {
		if int(d) < 0 || int(d) >= n {
			return fmt.Errorf("mcast: destination %d out of range", d)
		}
		if d == src {
			return fmt.Errorf("mcast: source %d in destination set", d)
		}
		if seen[d] {
			return fmt.Errorf("mcast: duplicate destination %d", d)
		}
		seen[d] = true
	}
	return nil
}

// ClusterBySwitch orders destinations so nodes sharing a switch are
// adjacent, with switch groups ordered by hop distance from the source's
// switch (nearest first) and by switch ID within equal distance. Both
// host-driven tree builders use this ordering so subtrees stay
// switch-local, the contention-minimizing construction of the authors'
// HPCA'97 k-binomial work.
func ClusterBySwitch(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID) []topology.NodeID {
	t := rt.Topo
	home := t.NodeSwitch[src]
	out := append([]topology.NodeID(nil), dests...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := t.NodeSwitch[out[i]], t.NodeSwitch[out[j]]
		if si != sj {
			di, dj := rt.DistUp(home, si), rt.DistUp(home, sj)
			if di != dj {
				return di < dj
			}
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// DestSwitches returns the destinations grouped by home switch, as a map
// plus the set of switches in ascending ID order.
func DestSwitches(rt *updown.Routing, dests []topology.NodeID) (map[topology.SwitchID][]topology.NodeID, []topology.SwitchID) {
	groups := make(map[topology.SwitchID][]topology.NodeID)
	for _, d := range dests {
		s := rt.Topo.NodeSwitch[d]
		groups[s] = append(groups[s], d)
	}
	switches := make([]topology.SwitchID, 0, len(groups))
	for s := range groups {
		switches = append(switches, s)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	return groups, switches
}
