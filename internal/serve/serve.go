// Package serve implements mcastsim's long-run service mode: an HTTP
// server that accepts JSON workload specs, runs them on the experiment
// worker pool, and streams progress, telemetry and result tables back
// over Server-Sent Events. With a checkpoint directory configured,
// Drain (wired to SIGTERM by the CLI) interrupts every running job at
// its next cell boundary and leaves a resumable journal behind, so a
// restarted server picks long experiments up where the old process
// stopped.
//
// Endpoints:
//
//	GET  /v1/healthz          liveness probe
//	GET  /v1/experiments      the experiment catalogue (registry IDs)
//	POST /v1/jobs             submit a JobSpec; returns {"id": ...}
//	GET  /v1/jobs             list all jobs
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/stream SSE: progress, obs, table, done events
//
// The stream replays a job's full event history on connect, so a
// late subscriber sees everything an early one did.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"

	"mcastsim/internal/event"
	"mcastsim/internal/experiment"
	"mcastsim/internal/obs"
)

// JobSpec is the JSON workload description POST /v1/jobs accepts. The
// zero value of every optional field keeps the preset's default.
type JobSpec struct {
	// Experiment is a registry ID (see GET /v1/experiments). Required.
	Experiment string `json:"experiment"`
	// Full selects the paper-scale preset instead of quick.
	Full bool `json:"full,omitempty"`
	// Seed overrides the preset seed (0 keeps the default).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the cell worker pool (0 = one per CPU). Results
	// are byte-identical for any value.
	Workers int `json:"workers,omitempty"`
	// Shards runs every cell on the sharded PDES engine. Results are
	// byte-identical for any value.
	Shards int `json:"shards,omitempty"`
	// Probes / Topologies scale the experiment grid down (or up).
	Probes     int `json:"probes,omitempty"`
	Topologies int `json:"topologies,omitempty"`
	// Obs streams per-cell telemetry bundles as JSONL over the job's
	// event stream. Mutually exclusive with checkpointing, so a job
	// with Obs set runs without a journal even on a checkpointing
	// server — an interrupted obs job restarts from scratch.
	Obs bool `json:"obs,omitempty"`
	// ObsEvery is the telemetry sampling cadence in cycles (with Obs).
	ObsEvery uint64 `json:"obs_every,omitempty"`
}

// config maps the spec onto an experiment.Config.
func (sp JobSpec) config() experiment.Config {
	cfg := experiment.Quick()
	if sp.Full {
		cfg = experiment.Full()
	}
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}
	cfg.Workers = sp.Workers
	if sp.Shards > 0 {
		cfg.Shards = sp.Shards
	}
	if sp.Probes > 0 {
		cfg.Probes = sp.Probes
	}
	if sp.Topologies > 0 {
		cfg.Topologies = sp.Topologies
		if cfg.LoadTopologies > sp.Topologies {
			cfg.LoadTopologies = sp.Topologies
		}
	}
	return cfg
}

// Job states.
const (
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted" // drained to a resumable checkpoint
)

// jobEvent is one SSE frame: a type and a pre-marshaled payload.
type jobEvent struct {
	Type string // progress | obs | table | done
	Data []byte // JSON (obs events carry obs JSONL, possibly multi-line)
}

// Job is one submitted experiment run.
type Job struct {
	ID   string
	Spec JobSpec

	mu       sync.Mutex
	state    string
	errMsg   string
	done     int // cells finished in the current grid
	total    int // current grid size
	events   []jobEvent
	subs     map[chan struct{}]struct{}
	finished chan struct{}
	ck       *experiment.Checkpointer
}

// publish appends an event and pokes every subscriber.
func (j *Job) publish(typ string, data []byte) {
	j.mu.Lock()
	j.events = append(j.events, jobEvent{Type: typ, Data: data})
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	j.mu.Unlock()
}

// Status is the JSON shape of GET /v1/jobs and GET /v1/jobs/{id}.
type Status struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	State      string `json:"state"`
	DoneCells  int    `json:"done_cells"`
	TotalCells int    `json:"total_cells"`
	Error      string `json:"error,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Experiment: j.Spec.Experiment, State: j.state,
		DoneCells: j.done, TotalCells: j.total, Error: j.errMsg,
	}
}

// Options configure a Server.
type Options struct {
	// CheckpointDir, when non-empty, gives every non-obs job a journal
	// at <dir>/<job-id> and makes Drain checkpoint in-flight jobs.
	// Job IDs are assigned in submission order, so a restarted server
	// fed the same submissions resumes each job from its journal.
	CheckpointDir string
}

// Server owns the job table. Create with New, mount Handler, and call
// Drain before process exit.
type Server struct {
	opts Options

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// New returns an empty server.
func New(opts Options) *Server {
	return &Server{opts: opts, jobs: make(map[string]*Job)}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			ID    string `json:"id"`
			Paper string `json:"paper"`
		}
		var out []entry
		for _, e := range experiment.Registry() {
			out = append(out, entry{e.ID, e.Paper})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad spec: " + err.Error()})
		return
	}
	entry, err := experiment.Lookup(spec.Experiment)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server is draining"})
		return
	}
	s.nextID++
	job := &Job{
		ID: fmt.Sprintf("job-%04d", s.nextID), Spec: spec,
		state: StateRunning, subs: make(map[chan struct{}]struct{}),
		finished: make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(job, entry)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "state": StateRunning})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleStream serves a job's event history plus live tail as SSE.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	poke := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[poke] = struct{}{}
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		delete(j.subs, poke)
		j.mu.Unlock()
	}()

	idx := 0
	for {
		j.mu.Lock()
		pending := j.events[idx:]
		idx = len(j.events)
		j.mu.Unlock()
		for _, ev := range pending {
			if err := writeSSE(w, ev); err != nil {
				return
			}
		}
		if len(pending) > 0 {
			fl.Flush()
		}
		select {
		case <-j.finished:
			// Drain anything published between our snapshot and the close.
			j.mu.Lock()
			tail := j.events[idx:]
			j.mu.Unlock()
			for _, ev := range tail {
				if err := writeSSE(w, ev); err != nil {
					return
				}
			}
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		case <-poke:
		}
	}
}

// writeSSE frames one event; multi-line payloads (obs JSONL) become one
// data: line each, as the SSE grammar requires.
func writeSSE(w http.ResponseWriter, ev jobEvent) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: %s\n", ev.Type)
	for _, line := range strings.Split(strings.TrimRight(string(ev.Data), "\n"), "\n") {
		fmt.Fprintf(&b, "data: %s\n", line)
	}
	b.WriteString("\n")
	_, err := w.Write(b.Bytes())
	return err
}

// run executes one job to completion (or interruption) and publishes
// its lifecycle onto the event stream.
func (s *Server) run(j *Job, entry experiment.Entry) {
	defer s.wg.Done()
	defer close(j.finished)

	cfg := j.Spec.config()
	cfg.Progress = func(done, total int) {
		j.mu.Lock()
		j.done, j.total = done, total
		j.mu.Unlock()
		data, _ := json.Marshal(map[string]int{"done": done, "total": total})
		j.publish("progress", data)
	}
	if j.Spec.Obs {
		cfg.Obs = &experiment.ObsSink{
			Config: obs.Config{Every: event.Time(j.Spec.ObsEvery)},
			OnAdd: func(b obs.Bundle) {
				var buf bytes.Buffer
				if err := obs.WriteJSONL(&buf, []obs.Bundle{b}); err == nil {
					j.publish("obs", buf.Bytes())
				}
			},
		}
	} else if s.opts.CheckpointDir != "" {
		ck, err := experiment.OpenCheckpointer(filepath.Join(s.opts.CheckpointDir, j.ID))
		if err != nil {
			s.finish(j, StateFailed, err.Error())
			return
		}
		defer ck.Close()
		cfg.Checkpoint = ck
		j.mu.Lock()
		j.ck = ck
		j.mu.Unlock()
	}

	tables, err := entry.Run(cfg)
	if err != nil {
		var intr *experiment.Interrupted
		if errors.As(err, &intr) {
			s.finish(j, StateInterrupted, err.Error())
			return
		}
		s.finish(j, StateFailed, err.Error())
		return
	}
	for _, tab := range tables {
		var text strings.Builder
		if err := tab.Render(&text); err != nil {
			s.finish(j, StateFailed, err.Error())
			return
		}
		data, _ := json.Marshal(map[string]string{"title": tab.Title, "text": text.String()})
		j.publish("table", data)
	}
	s.finish(j, StateDone, "")
}

// finish records the terminal state and publishes the done event.
func (s *Server) finish(j *Job, state, errMsg string) {
	j.mu.Lock()
	j.state, j.errMsg = state, errMsg
	j.mu.Unlock()
	payload := map[string]string{"state": state}
	if errMsg != "" {
		payload["error"] = errMsg
	}
	data, _ := json.Marshal(payload)
	j.publish("done", data)
}

// Drain stops accepting jobs, interrupts every checkpointing job at
// its next cell boundary, and blocks until all jobs have finished.
// Jobs without a journal (obs jobs, or a server without a checkpoint
// directory) run to completion — they have nowhere to save progress.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if j.state == StateRunning && j.ck != nil {
			j.ck.Interrupt()
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
