package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcastsim/internal/experiment"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Type string
	Data string // data lines rejoined with \n
}

// readSSE consumes an event stream to EOF (the stream handler closes
// after the done event).
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var (
		out  []sseEvent
		cur  sseEvent
		data []string
	)
	flush := func() {
		if cur.Type != "" {
			cur.Data = strings.Join(data, "\n")
			out = append(out, cur)
		}
		cur, data = sseEvent{}, nil
	}
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: "))
		}
	}
	flush()
	return out
}

func submit(t *testing.T, url string, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, got)
	}
	return got["id"]
}

func stream(t *testing.T, url, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream", url, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return readSSE(t, sc)
}

func quickSpec() JobSpec {
	return JobSpec{Experiment: "fig6", Probes: 2, Topologies: 1, Workers: 2}
}

// TestSubmitStreamDone walks the happy path: submit, stream to
// completion, and check progress, tables, terminal state, and the
// status endpoints agree.
func TestSubmitStreamDone(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submit(t, ts.URL, quickSpec())
	events := stream(t, ts.URL, id)

	var progress, tables, done int
	var final map[string]string
	for _, ev := range events {
		switch ev.Type {
		case "progress":
			progress++
		case "table":
			tables++
			var tab map[string]string
			if err := json.Unmarshal([]byte(ev.Data), &tab); err != nil || tab["text"] == "" {
				t.Fatalf("bad table event %q: %v", ev.Data, err)
			}
		case "done":
			done++
			if err := json.Unmarshal([]byte(ev.Data), &final); err != nil {
				t.Fatal(err)
			}
		}
	}
	if progress == 0 || tables == 0 || done != 1 {
		t.Fatalf("events: %d progress, %d tables, %d done", progress, tables, done)
	}
	if final["state"] != StateDone {
		t.Fatalf("final state = %v", final)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.DoneCells != st.TotalCells || st.TotalCells == 0 {
		t.Fatalf("status = %+v", st)
	}
}

// TestObsStream: a job with Obs set streams telemetry bundles as JSONL
// obs events (one meta line plus snapshot lines per cell).
func TestObsStream(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := quickSpec()
	spec.Obs = true
	id := submit(t, ts.URL, spec)
	events := stream(t, ts.URL, id)

	obsEvents := 0
	for _, ev := range events {
		if ev.Type != "obs" {
			continue
		}
		obsEvents++
		var rec struct {
			Cell string `json:"cell"`
		}
		first := strings.SplitN(ev.Data, "\n", 2)[0]
		if err := json.Unmarshal([]byte(first), &rec); err != nil || rec.Cell == "" {
			t.Fatalf("bad obs JSONL line %q: %v", first, err)
		}
	}
	if obsEvents == 0 {
		t.Fatal("no obs events streamed")
	}
}

// TestBadRequests: malformed JSON and unknown experiments are 400s.
func TestBadRequests(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{"{nope", `{"experiment":"no-such-fig"}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %q: %d", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
}

// TestDrainCheckpointResume is the SIGTERM story end to end: a
// checkpointing server drains mid-run, the job lands interrupted with
// a journal, and a restarted server fed the same submission resumes it
// to tables identical to an uninterrupted run.
func TestDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	// fig8 with serial workers: 4 message lengths x 3 schemes x 2
	// topologies x 3 probes of up-to-1024-flit messages — long enough
	// that the drain below lands mid-run.
	spec := JobSpec{Experiment: "fig8", Probes: 3, Topologies: 2, Workers: 1}

	// Uninterrupted reference, straight through the experiment layer.
	entry, err := experiment.Lookup(spec.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	want, err := entry.Run(spec.config())
	if err != nil {
		t.Fatal(err)
	}
	var wantText strings.Builder
	for _, tab := range want {
		if err := tab.Render(&wantText); err != nil {
			t.Fatal(err)
		}
	}

	s := New(Options{CheckpointDir: dir})
	ts := httptest.NewServer(s.Handler())
	id := submit(t, ts.URL, spec)

	// Wait until the job has its journal open, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		j.mu.Lock()
		ready := j.ck != nil
		j.mu.Unlock()
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never opened its checkpointer")
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	st := s.jobs[id].status()
	ts.Close()
	if st.State == StateDone {
		t.Skip("job outran the drain; nothing to resume")
	}
	if st.State != StateInterrupted {
		t.Fatalf("post-drain state = %+v", st)
	}

	// "Restart": a fresh server on the same checkpoint directory gets
	// the same job ID for the same (first) submission and resumes it.
	s2 := New(Options{CheckpointDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	id2 := submit(t, ts2.URL, spec)
	if id2 != id {
		t.Fatalf("restarted server assigned %s, want %s", id2, id)
	}
	events := stream(t, ts2.URL, id2)
	var gotText strings.Builder
	finalState := ""
	for _, ev := range events {
		switch ev.Type {
		case "table":
			var tab map[string]string
			if err := json.Unmarshal([]byte(ev.Data), &tab); err != nil {
				t.Fatal(err)
			}
			gotText.WriteString(tab["text"])
		case "done":
			var d map[string]string
			if err := json.Unmarshal([]byte(ev.Data), &d); err != nil {
				t.Fatal(err)
			}
			finalState = d["state"]
		}
	}
	if finalState != StateDone {
		t.Fatalf("resumed job state = %q", finalState)
	}
	if gotText.String() != wantText.String() {
		t.Fatalf("resumed tables differ from uninterrupted:\n--- resumed ---\n%s\n--- reference ---\n%s",
			gotText.String(), wantText.String())
	}

	// Draining servers refuse new work.
	s2.Drain()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts2.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d", resp.StatusCode)
	}
}
