// Package core is the library's front door: it assembles a routed
// irregular network into a System and runs multicasts on it with any of
// the paper's schemes, hiding the topology/updown/sim plumbing. The
// examples and command-line tools are written against this package;
// lower-level control (custom plans, open-loop load, per-figure
// experiments) remains available from the internal packages it wraps.
package core

import (
	"fmt"
	"sort"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/binomial"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// System is a routed irregular network ready to simulate multicasts.
type System struct {
	Topo    *topology.Topology
	Routing *updown.Routing
	Params  sim.Params
	seed    uint64
}

// Options configures BuildSystem. The zero value selects the paper's
// default system (32 nodes, eight 8-port switches, default timing).
type Options struct {
	// Topology generation; zero-valued fields fall back to the defaults.
	Switches       int
	PortsPerSwitch int
	Nodes          int
	// Seed drives topology generation and simulator arbitration.
	Seed uint64
	// Params overrides the timing parameters when non-nil.
	Params *sim.Params
}

// BuildSystem generates a random irregular topology, computes its up*/down*
// routing state, and returns the ready System.
func BuildSystem(opt Options) (*System, error) {
	cfg := topology.DefaultConfig()
	if opt.Switches > 0 {
		cfg.Switches = opt.Switches
	}
	if opt.PortsPerSwitch > 0 {
		cfg.PortsPerSwitch = opt.PortsPerSwitch
	}
	if opt.Nodes > 0 {
		cfg.Nodes = opt.Nodes
	}
	topo, err := topology.Generate(cfg, rng.New(opt.Seed))
	if err != nil {
		return nil, err
	}
	return SystemFromTopology(topo, opt)
}

// SystemFromTopology wraps an explicit (e.g. hand-built or file-loaded)
// topology instead of generating one.
func SystemFromTopology(topo *topology.Topology, opt Options) (*System, error) {
	rt, err := updown.New(topo)
	if err != nil {
		return nil, err
	}
	p := sim.DefaultParams()
	if opt.Params != nil {
		p = *opt.Params
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &System{Topo: topo, Routing: rt, Params: p, seed: opt.Seed}, nil
}

// Schemes returns the multicast schemes the paper compares, keyed by name:
// "sw-binomial" (software baseline), "ni-kbinomial" (NI-based),
// "sw-tree" (single tree worm), "sw-path" (MDP-LG path worms).
func Schemes() map[string]mcast.Scheme {
	return map[string]mcast.Scheme{
		"sw-binomial":  binomial.New(),
		"ni-kbinomial": kbinomial.New(),
		"sw-tree":      treeworm.New(),
		"sw-path":      pathworm.New(),
	}
}

// SchemeNames returns the registered scheme names in stable order.
func SchemeNames() []string {
	names := make([]string, 0, 4)
	for n := range Schemes() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupScheme resolves a scheme by name.
func LookupScheme(name string) (mcast.Scheme, error) {
	s, ok := Schemes()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %q (have %v)", name, SchemeNames())
	}
	return s, nil
}

// MulticastResult reports one simulated multicast.
type MulticastResult struct {
	Scheme string
	// Latency is initiation-to-last-host-completion, in cycles.
	Latency event.Time
	// LatencyNS converts Latency using the configured cycle time.
	LatencyNS int64
	// PerDest gives each destination's completion time (cycles after
	// initiation).
	PerDest map[topology.NodeID]event.Time
	// Network traffic accounting for the multicast.
	Stats sim.Stats
}

// Multicast runs one isolated multicast on a fresh simulator instance and
// returns its timing. msgFlits is the payload length in flits (bytes).
func (s *System) Multicast(scheme mcast.Scheme, src topology.NodeID, dests []topology.NodeID, msgFlits int) (*MulticastResult, error) {
	plan, err := scheme.Plan(s.Routing, s.Params, src, dests, msgFlits)
	if err != nil {
		return nil, err
	}
	n, err := sim.New(s.Routing, s.Params, s.seed)
	if err != nil {
		return nil, err
	}
	m, err := n.RunSingle(plan, msgFlits)
	if err != nil {
		return nil, err
	}
	if err := n.CheckConservation(); err != nil {
		return nil, err
	}
	per := make(map[topology.NodeID]event.Time, len(m.DoneAt))
	for d, t := range m.DoneAt {
		per[d] = t - m.Initiated
	}
	lat := m.Latency()
	return &MulticastResult{
		Scheme:    scheme.Name(),
		Latency:   lat,
		LatencyNS: int64(lat) * int64(s.Params.CycleNS),
		PerDest:   per,
		Stats:     n.Stats(),
	}, nil
}

// Compare runs the same multicast under every registered scheme and
// returns the results sorted fastest-first.
func (s *System) Compare(src topology.NodeID, dests []topology.NodeID, msgFlits int) ([]*MulticastResult, error) {
	var out []*MulticastResult
	for _, name := range SchemeNames() {
		res, err := s.Multicast(Schemes()[name], src, dests, msgFlits)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Latency < out[j].Latency })
	return out, nil
}
