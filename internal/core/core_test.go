package core

import (
	"testing"

	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
)

func TestBuildSystemDefaults(t *testing.T) {
	s, err := BuildSystem(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo.NumNodes != 32 || s.Topo.NumSwitches != 8 {
		t.Fatalf("default system shape %d/%d", s.Topo.NumNodes, s.Topo.NumSwitches)
	}
	if s.Params.PacketFlits != 128 {
		t.Fatal("default params not applied")
	}
}

func TestBuildSystemOverrides(t *testing.T) {
	p := sim.DefaultParams().WithR(4)
	s, err := BuildSystem(Options{Switches: 16, Nodes: 24, PortsPerSwitch: 8, Seed: 2, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo.NumSwitches != 16 || s.Topo.NumNodes != 24 {
		t.Fatal("overrides ignored")
	}
	if s.Params.ONISend != 25 {
		t.Fatalf("params override ignored: %d", s.Params.ONISend)
	}
}

func TestBuildSystemRejectsBadParams(t *testing.T) {
	p := sim.DefaultParams()
	p.PacketFlits = 0
	if _, err := BuildSystem(Options{Seed: 1, Params: &p}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSchemeRegistry(t *testing.T) {
	names := SchemeNames()
	if len(names) != 4 {
		t.Fatalf("scheme count %d", len(names))
	}
	for _, n := range names {
		s, err := LookupScheme(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != n {
			t.Fatalf("registry name %q vs scheme name %q", n, s.Name())
		}
	}
	if _, err := LookupScheme("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestMulticastAllSchemes(t *testing.T) {
	s, err := BuildSystem(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dests := []topology.NodeID{1, 5, 9, 13, 17, 21, 25, 29}
	for name, sch := range Schemes() {
		res, err := s.Multicast(sch, 0, dests, 128)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Latency <= 0 {
			t.Fatalf("%s: latency %d", name, res.Latency)
		}
		if res.LatencyNS != int64(res.Latency)*10 {
			t.Fatalf("%s: ns conversion wrong", name)
		}
		if len(res.PerDest) != len(dests) {
			t.Fatalf("%s: per-dest map size %d", name, len(res.PerDest))
		}
		for d, dt := range res.PerDest {
			if dt <= 0 || dt > res.Latency {
				t.Fatalf("%s: dest %d completion %d outside (0, %d]", name, d, dt, res.Latency)
			}
		}
	}
}

func TestCompareSortedAndTreeWins(t *testing.T) {
	s, err := BuildSystem(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dests := []topology.NodeID{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 31}
	results, err := s.Compare(0, dests, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Latency > results[i].Latency {
			t.Fatal("results not sorted")
		}
	}
	// The paper's headline: the single-phase tree worm wins.
	if results[0].Scheme != "sw-tree" {
		t.Fatalf("fastest scheme %q, want sw-tree", results[0].Scheme)
	}
	// And the software baseline loses.
	if results[3].Scheme != "sw-binomial" {
		t.Fatalf("slowest scheme %q, want sw-binomial", results[3].Scheme)
	}
}

func TestSystemFromTopology(t *testing.T) {
	topo, err := topology.Build(2, 4,
		[][4]int{{0, 0, 1, 0}},
		[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SystemFromTopology(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Multicast(Schemes()["sw-tree"], 0, []topology.NodeID{1, 2, 3}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDest) != 3 {
		t.Fatal("custom topology multicast incomplete")
	}
}

func TestMulticastPropagatesPlanErrors(t *testing.T) {
	s, err := BuildSystem(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sch := Schemes()["sw-tree"]
	if _, err := s.Multicast(sch, 0, nil, 128); err == nil {
		t.Fatal("empty destination set accepted")
	}
	if _, err := s.Multicast(sch, 0, []topology.NodeID{0}, 128); err == nil {
		t.Fatal("self-multicast accepted")
	}
	if _, err := s.Multicast(sch, 0, []topology.NodeID{1}, 0); err == nil {
		t.Fatal("zero-length message accepted")
	}
}

func TestSchemesReturnsFreshMap(t *testing.T) {
	a := Schemes()
	delete(a, "sw-tree")
	if _, err := LookupScheme("sw-tree"); err != nil {
		t.Fatal("mutating the returned map corrupted the registry")
	}
}
