// Dsminvalidate: the paper's motivating DSM workload (§1 cites cache
// invalidations and acknowledgement collection as system-level multicast
// users). A directory node multicasts short invalidation messages to the
// sharer set, then sharers send short unicast acknowledgements back; the
// metric is the full invalidate-and-collect round trip. Small messages
// and bursty fan-out stress exactly the overheads the schemes differ on.
package main

import (
	"fmt"
	"log"

	"mcastsim/internal/core"
	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
)

const (
	invalidateFlits = 16 // a coherence message, far below one packet
	ackFlits        = 8
	rounds          = 40
)

func main() {
	sys, err := core.BuildSystem(core.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(2024)

	fmt.Println("DSM invalidation round trips: multicast invalidate + unicast acks")
	fmt.Printf("%d rounds, random sharer sets of 4..16, %d-flit invalidations\n\n",
		rounds, invalidateFlits)
	fmt.Printf("%-14s %14s %14s\n", "scheme", "mean rt (cyc)", "worst rt (cyc)")

	for _, name := range core.SchemeNames() {
		sch, _ := core.LookupScheme(name)
		mean, worst, err := invalidationRounds(sys, sch, r.Split())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-14s %14.0f %14d\n", name, mean, worst)
	}
	fmt.Println("\nthe multicast ranking matches the paper (tree < path < NI < binomial),")
	fmt.Println("but the spread is damped: collecting the acknowledgements serializes")
	fmt.Println("o_r per ack on the directory host, an Amdahl bound no multicast scheme")
	fmt.Println("can beat — which is why the paper's citations also pursue combining")
	fmt.Println("acks in the network, not just faster multicast.")
}

// invalidationRounds runs the workload for one scheme and reports the mean
// and worst round-trip times.
func invalidationRounds(sys *core.System, sch mcast.Scheme, r *rng.Source) (float64, event.Time, error) {
	numNodes := sys.Topo.NumNodes
	var sum float64
	var worst event.Time
	for round := 0; round < rounds; round++ {
		n, err := sim.New(sys.Routing, sys.Params, uint64(round))
		if err != nil {
			return 0, 0, err
		}
		directory := topology.NodeID(r.Intn(numNodes))
		sharers := sharerSet(r, numNodes, directory)

		// Phase 1: invalidate multicast.
		plan, err := sch.Plan(sys.Routing, sys.Params, directory, sharers, invalidateFlits)
		if err != nil {
			return 0, 0, err
		}
		var ackDone event.Time
		acksLeft := len(sharers)
		inv, err := n.Send(plan, invalidateFlits, 0, nil)
		if err != nil {
			return 0, 0, err
		}
		// Phase 2: each sharer acks the moment its host has the
		// invalidation (the per-destination completion hook).
		inv.OnDestDone = func(_ *sim.Message, d topology.NodeID) {
			ack := &sim.Plan{
				Source: d,
				Dests:  []topology.NodeID{directory},
				HostSends: map[topology.NodeID][]sim.WormSpec{
					d: {{Kind: sim.WormUnicast, Dest: directory}},
				},
			}
			if _, err := n.Send(ack, ackFlits, n.Now(), func(*sim.Message) {
				acksLeft--
				if acksLeft == 0 {
					ackDone = n.Now()
				}
			}); err != nil {
				panic(err)
			}
		}
		if err := n.Drain(0); err != nil {
			return 0, 0, err
		}
		rt := ackDone
		_ = inv
		sum += float64(rt)
		if rt > worst {
			worst = rt
		}
	}
	return sum / rounds, worst, nil
}

// sharerSet draws 4..16 distinct sharers excluding the directory node.
func sharerSet(r *rng.Source, numNodes int, directory topology.NodeID) []topology.NodeID {
	k := 4 + r.Intn(13)
	var out []topology.NodeID
	for _, v := range r.Sample(numNodes, numNodes-1) {
		if topology.NodeID(v) != directory && len(out) < k {
			out = append(out, topology.NodeID(v))
		}
	}
	return out
}
