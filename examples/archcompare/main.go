// Archcompare: the paper's §3.3 architectural trade-off, quantified from
// the implementation as the system scales — header bytes on the wire,
// switch state for reachability strings, worms and host-level phases per
// multicast. Run it to see why the paper concludes "support multicast at
// the NI first, then add single-phase hardware multicast in switches".
package main

import (
	"fmt"
	"log"

	"mcastsim/internal/core"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
)

func main() {
	fmt.Println("architectural costs per scheme as the system scales (16-way multicast)")
	fmt.Printf("%-7s %-9s | %-22s | %-22s | %-22s\n", "nodes", "switches",
		"header flits (uni/tree/path)", "switch state bits (tree)", "worms x phases (path)")

	r := rng.New(5)
	for _, scale := range []struct{ nodes, switches int }{
		{16, 4}, {32, 8}, {64, 16}, {128, 32},
	} {
		sys, err := core.BuildSystem(core.Options{
			Nodes: scale.nodes, Switches: scale.switches, PortsPerSwitch: 8,
			Seed: uint64(scale.nodes),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Path worm stats averaged over a few random 16-way sets (capped
		// by the system size at the small end).
		degree := 16
		if degree > scale.nodes-1 {
			degree = scale.nodes - 1
		}
		var worms, phases, segs float64
		const trials = 10
		for i := 0; i < trials; i++ {
			src := topology.NodeID(r.Intn(scale.nodes))
			var dests []topology.NodeID
			for _, v := range r.Sample(scale.nodes-1, degree) {
				if topology.NodeID(v) >= src {
					v++
				}
				dests = append(dests, topology.NodeID(v))
			}
			res, err := pathworm.New().Cover(sys.Routing, src, dests)
			if err != nil {
				log.Fatal(err)
			}
			worms += float64(res.Worms)
			phases += float64(res.Phases)
			for _, specs := range res.Sends {
				for _, w := range specs {
					segs += float64(len(w.Path))
				}
			}
		}
		segs /= worms
		worms /= trials
		phases /= trials

		// Tree switch state: one N-bit string per down port.
		var downPorts, switches float64
		for s := 0; s < sys.Topo.NumSwitches; s++ {
			downPorts += float64(len(sys.Routing.DownPorts(topology.SwitchID(s))))
			switches++
		}
		stateBits := downPorts / switches * float64(scale.nodes)

		fmt.Printf("%-7d %-9d | uni=%d tree=%d path=%.0f       | %6.0f bits/switch      | %.1f worms, %.1f phases\n",
			scale.nodes, scale.switches,
			sim.UnicastHeaderFlits,
			sim.TreeHeaderFlits(scale.nodes),
			float64(sim.PathHeaderFlits(int(segs+0.5), 8)),
			stateBits, worms, phases)
	}

	fmt.Println("\ntree headers and switch state grow with system size (the §3.3 cost);")
	fmt.Println("path headers stay system-size independent but worm and phase counts")
	fmt.Println("grow as destinations thin out across switches (Figure 7's driver).")
}
