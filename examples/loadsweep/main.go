// Loadsweep: drive the network with open-loop multicast traffic (every
// node fires 8-way multicasts with exponential interarrivals) and sweep
// the effective applied load, printing the latency-vs-load curve per
// scheme — a single panel of the paper's Figure 9, runnable in seconds.
package main

import (
	"fmt"
	"log"

	"mcastsim/internal/core"
	"mcastsim/internal/traffic"
)

func main() {
	sys, err := core.BuildSystem(core.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	fmt.Println("open-loop 8-way multicast load, 128-flit messages, R=1")
	fmt.Printf("%-14s", "scheme")
	for _, l := range loads {
		fmt.Printf(" %8.2f", l)
	}
	fmt.Println("  (effective applied load)")

	for _, name := range core.SchemeNames() {
		if name == "sw-binomial" {
			continue // the figures compare the three enhanced schemes
		}
		sch, _ := core.LookupScheme(name)
		fmt.Printf("%-14s", name)
		for _, l := range loads {
			out, err := traffic.Run(sys.Routing, traffic.Workload{
				Scheme:   sch,
				Params:   sys.Params,
				Degree:   8,
				MsgFlits: 128,
				Seed:     99,
			}, traffic.WithLoad(traffic.LoadSpec{
				EffectiveLoad: l,
				Warmup:        10_000,
				Measure:       50_000,
				Drain:         40_000,
			}))
			if err != nil {
				log.Fatal(err)
			}
			res := out.Load
			if res.Saturated {
				fmt.Printf(" %8s", "SAT")
				break
			}
			fmt.Printf(" %8.0f", res.Latency.Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nlatencies in cycles; SAT marks the saturation point (completions fell")
	fmt.Println("behind initiations). This is one topology and one seed — the experiment")
	fmt.Println("harness (cmd/mcastsim -exp fig9) averages over a topology family.")
}
