// Customtopo: reproduce the paper's Figure 1 system by hand — an explicit
// irregular 8-switch wiring — then inspect its up*/down* state (Figure
// 1(c)) and multicast across it. Shows how to drive the library with your
// own topology instead of the random generator.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"mcastsim/internal/core"
	"mcastsim/internal/topology"
)

func main() {
	// The Figure 1 shape: 8 switches wired irregularly, two nodes on each
	// of four switches (8 processing elements total).
	links := [][4]int{
		{0, 0, 1, 0}, {0, 1, 2, 0}, {1, 1, 3, 0}, {2, 1, 3, 1}, {2, 2, 4, 0},
		{3, 2, 5, 0}, {4, 1, 5, 1}, {4, 2, 6, 0}, {5, 2, 7, 0}, {6, 1, 7, 1},
	}
	nodes := [][2]int{
		{0, 6}, {0, 7}, // nodes 0,1 on switch 0
		{3, 6}, {3, 7}, // nodes 2,3 on switch 3
		{5, 6}, {5, 7}, // nodes 4,5 on switch 5
		{6, 6}, {6, 7}, // nodes 6,7 on switch 6
	}
	topo, err := topology.Build(8, 8, links, nodes)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.SystemFromTopology(topo, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(c): the BFS spanning tree and link orientations.
	rt := sys.Routing
	fmt.Printf("BFS spanning tree rooted at switch %d:\n", rt.Root)
	for s := 0; s < topo.NumSwitches; s++ {
		parent := "-"
		if rt.Parent[s] >= 0 {
			parent = fmt.Sprint(rt.Parent[s])
		}
		fmt.Printf("  switch %d: level %d, parent %s, down-covers %d/%d nodes\n",
			s, rt.Level[s], parent, rt.Cover[s].Count(), topo.NumNodes)
	}

	// The bit-string reachability state of the root switch (§3.2.3).
	fmt.Println("\nreachability strings at the root's down ports:")
	for _, p := range rt.DownPorts(rt.Root) {
		fmt.Printf("  port %d -> switch %d: %s\n",
			p, topo.Conn[rt.Root][p].Switch, rt.DownReach[rt.Root][p])
	}

	// Multicast node 0 -> everyone else under each scheme.
	var dests []topology.NodeID
	for n := 1; n < topo.NumNodes; n++ {
		dests = append(dests, topology.NodeID(n))
	}
	fmt.Println("\nbroadcast from node 0 (7 destinations, 128-flit message):")
	results, err := sys.Compare(0, dests, 128)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		var per []string
		for d := 1; d < topo.NumNodes; d++ {
			per = append(per, fmt.Sprintf("n%d@%d", d, r.PerDest[topology.NodeID(d)]))
		}
		fmt.Printf("  %-14s %5d cycles  (%s)\n", r.Scheme, r.Latency, strings.Join(per, " "))
	}

	// DOT rendering of the wiring for the curious.
	fmt.Println("\nGraphviz DOT on stderr (pipe 2> fig1.dot):")
	if err := topology.WriteDOT(os.Stderr, topo); err != nil {
		log.Fatal(err)
	}
}
