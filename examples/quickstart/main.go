// Quickstart: build the paper's default system (32 nodes on eight 8-port
// irregular switches), run one 16-way multicast under every scheme, and
// print the comparison — the library's one-minute tour.
package main

import (
	"fmt"
	"log"

	"mcastsim/internal/core"
	"mcastsim/internal/topology"
)

func main() {
	sys, err := core.BuildSystem(core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d nodes, %d switches x %d ports, %d inter-switch links\n",
		sys.Topo.NumNodes, sys.Topo.NumSwitches, sys.Topo.PortsPerSwitch, len(sys.Topo.Links))

	// A 16-way multicast from node 0 to every odd node, one 128-flit packet.
	var dests []topology.NodeID
	for n := 1; n < sys.Topo.NumNodes; n += 2 {
		dests = append(dests, topology.NodeID(n))
	}
	results, err := sys.Compare(0, dests, 128)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n16-way multicast, 128-flit message (%dns cycles):\n", sys.Params.CycleNS)
	fmt.Printf("%-14s %12s %12s %10s\n", "scheme", "latency(cyc)", "latency(µs)", "flit-hops")
	for _, r := range results {
		fmt.Printf("%-14s %12d %12.2f %10d\n",
			r.Scheme, r.Latency, float64(r.LatencyNS)/1000, r.Stats.FlitHops)
	}
	fmt.Println("\nthe single-phase tree worm wins; the software binomial baseline pays")
	fmt.Println("full host overhead per phase and loses — the paper's headline result.")
}
