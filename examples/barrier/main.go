// Barrier: the paper's §1 motivation made concrete — barrier
// synchronization and all-reduce built on top of each multicast scheme
// (combining-gather up, multicast release down). Shows how far the
// multicast-scheme advantage survives inside a full collective.
package main

import (
	"fmt"
	"log"

	"mcastsim/internal/collective"
	"mcastsim/internal/core"
)

func main() {
	sys, err := core.BuildSystem(core.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collectives on %d nodes / %d switches, per multicast scheme\n\n",
		sys.Topo.NumNodes, sys.Topo.NumSwitches)
	fmt.Printf("%-14s %12s %12s %15s\n", "scheme", "broadcast", "barrier", "allreduce(256B)")

	for _, name := range core.SchemeNames() {
		sch, _ := core.LookupScheme(name)
		base := collective.Config{Scheme: sch, Params: sys.Params, Root: 0, Flits: 16, Seed: 5}

		bc, err := collective.Broadcast(sys.Routing, base)
		if err != nil {
			log.Fatal(err)
		}
		bar, err := collective.Barrier(sys.Routing, base)
		if err != nil {
			log.Fatal(err)
		}
		arCfg := base
		arCfg.Flits = 256
		ar, err := collective.AllReduce(sys.Routing, arCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12d %12d %15d\n", name, bc.Latency, bar.Latency, ar.Latency)
	}
	fmt.Println("\nlatencies in cycles. The broadcast phase carries the scheme's")
	fmt.Println("advantage; the combining gather is scheme-independent and dilutes")
	fmt.Println("it — hardware multicast helps collectives most when the gather")
	fmt.Println("direction is also accelerated (the paper's companion work on")
	fmt.Println("gather worms and acknowledgement combining).")
}
